"""``repro.api.run``: one RunSpec in, one Report out, any substrate.

The sim path compiles the spec to a
:class:`~repro.scenarios.ScenarioRunner` execution (repeats fan out
over the :mod:`~repro.scenarios.executors` backends); the live path
compiles it to a serve+loadtest pairing — a loopback
:class:`~repro.live.server.DocLiveServer` (or an externally provided
endpoint) driven by :func:`~repro.live.loadgen.generate_load` through a
:class:`~repro.live.client.LiveResolver`; the fleet path compiles it to
a :func:`~repro.fleet.run_fleet` aggregate pass (repeats fan out over
the same executor backends). All paths emit the same versioned
:class:`~repro.api.report.Report`.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.log import get_logger

from .report import Report, report_from_experiment_result, report_from_loadgen
from .spec import ApiError, RunSpec

_log = get_logger("repro.api.runner")


def run(spec: Union[RunSpec, str], *, _config=None) -> Report:
    """Execute *spec* (a :class:`RunSpec` or a spec string) and return
    its :class:`~repro.api.report.Report`.

    ``_config`` is the legacy-adapter hook: when
    :func:`~repro.experiments.resolution.run_resolution_experiment`
    delegates here it passes its :class:`ExperimentConfig` through so
    the underlying :class:`ExperimentResult` (``report.raw``) stays
    bit-identical to the pre-façade output.
    """
    if isinstance(spec, str):
        spec = RunSpec.from_spec(spec)
    log = _log.bind(
        substrate=spec.substrate,
        transport=spec.scenario.transport,
        repeats=spec.repeats,
    )
    log.info("run starting")
    if spec.substrate == "sim":
        report = _run_sim(spec, _config=_config)
    elif spec.substrate == "fleet":
        if _config is not None:
            raise ApiError("_config applies to the sim substrate only")
        report = _run_fleet(spec)
    else:
        if _config is not None:
            raise ApiError("_config applies to the sim substrate only")
        report = _run_live(spec)
    log.info(
        "run finished",
        succeeded=report.metrics.get("queries.succeeded"),
        qps=report.metrics.get("throughput.qps"),
        telemetry_snapshots=(
            len(report.telemetry) if report.telemetry else 0
        ),
    )
    return report


def _run_sim(spec: RunSpec, _config=None) -> Report:
    from repro.scenarios.executors import get_executor
    from repro.scenarios.runner import ScenarioRunner

    if spec.repeats == 1:
        result = ScenarioRunner().run(
            spec.to_scenario(), _config, frame_capture="records"
        )
        return report_from_experiment_result(result, spec=spec.to_dict())
    scenarios = [spec.to_scenario(seed) for seed in spec.repeat_seeds()]
    results = get_executor(None, spec.workers).map(
        _run_one_scenario, scenarios
    )
    return report_from_experiment_result(results, spec=spec.to_dict())


def _run_one_scenario(scenario):
    """Module-level so the process executor can pickle it."""
    from repro.scenarios.runner import ScenarioRunner

    return ScenarioRunner().run(scenario, frame_capture="counts")


def _run_fleet(spec: RunSpec) -> Report:
    from repro.fleet import report_from_fleet, run_fleet
    from repro.scenarios.executors import get_executor

    if spec.repeats == 1:
        result = run_fleet(spec.to_scenario(), spec.fleet)
        return report_from_fleet(result, spec=spec.to_dict())
    jobs = [
        (spec.to_scenario(seed), spec.fleet) for seed in spec.repeat_seeds()
    ]
    results = get_executor(None, spec.workers).map(_run_one_fleet, jobs)
    return report_from_fleet(results, spec=spec.to_dict())


def _run_one_fleet(job):
    """Module-level so the process executor can pickle it."""
    from repro.fleet import run_fleet

    scenario, options = job
    return run_fleet(scenario, options)


def _run_live(spec: RunSpec) -> Report:
    import asyncio

    if spec.live.serve_workers > 1 or spec.live.load_workers > 1:
        # The sharded pairing forks worker processes and must own the
        # process (no surrounding event loop), so it branches before
        # asyncio.run rather than inside it.
        from repro.live.workers import run_sharded_spec

        return run_sharded_spec(spec)
    return asyncio.run(_run_live_async(spec))


async def _run_live_async(spec: RunSpec) -> Report:
    """The serve+loadtest pairing, one pass per repeat.

    Self-serving runs restart the server per repetition so each repeat
    is an independent measurement (and OSCORE sender sequences restart
    cleanly, see :class:`~repro.live.client.LiveResolver`).
    """
    reports = []
    server_stats = None
    for seed in spec.repeat_seeds():
        report, stats = await _live_once(spec, seed)
        reports.append(report)
        server_stats = _merge_server_stats(server_stats, stats)
    unified = report_from_loadgen(
        reports if spec.repeats > 1 else reports[0],
        spec=spec.to_dict(),
        server_stats=server_stats,
    )
    return unified


def _merge_server_stats(merged, stats):
    """Accumulate per-repeat server counters (each repeat runs a fresh
    loopback server, so `live.server.*` must sum across them)."""
    if stats is None:
        return merged
    if merged is None:
        return dict(stats)
    for key in ("queries_handled", "validations_sent",
                "datagrams_received", "datagrams_sent"):
        if key in stats:
            merged[key] = merged.get(key, 0) + stats[key]
    cache = stats.get("resolver_cache")
    if isinstance(cache, dict):
        pooled = merged.setdefault("resolver_cache", {"hits": 0, "misses": 0})
        for key in ("hits", "misses"):
            pooled[key] = pooled.get(key, 0) + cache.get(key, 0)
        lookups = pooled["hits"] + pooled["misses"]
        pooled["hit_ratio"] = pooled["hits"] / lookups if lookups else 0.0
    return merged


async def _live_once(spec: RunSpec, seed: int):
    from repro.live.client import LiveResolver
    from repro.live.loadgen import generate_load
    from repro.live.server import DocLiveServer
    from repro.live.wiring import build_names

    scenario = spec.to_scenario(seed)
    workload = scenario.workload
    options = spec.live
    rate = workload.query_rate
    duration = workload.num_queries / rate

    server: Optional[DocLiveServer] = None
    if options.host is None:
        server = DocLiveServer(
            transport=scenario.transport,
            host="127.0.0.1",
            port=options.port,
            num_names=workload.num_names,
            dataset=options.dataset,
            name_seed=options.name_seed,
            ttl=workload.ttl,
            scheme=scenario.scheme,
            seed=seed,
        )
        await server.start()
        endpoint = server.endpoint
        names = server.names
    else:
        endpoint = (options.host, options.port)
        names = build_names(
            workload.num_names,
            dataset=options.dataset,
            name_seed=options.name_seed,
        )
    try:
        resolver = LiveResolver(
            endpoint,
            transport=scenario.transport,
            scheme=scenario.scheme,
            cache_placement=spec.client_cache_placement(),
            block_size=scenario.block_size,
            seed=seed + 1,
            timeout=options.timeout,
        )
        async with resolver:
            report = await generate_load(
                resolver,
                names,
                rate=rate,
                duration=duration,
                mode=options.mode,
                concurrency=options.concurrency,
                timeout=options.timeout,
                seed=seed,
                workload=workload,
                include_latencies=True,
            )
        stats = server.stats() if server is not None else None
    finally:
        if server is not None:
            await server.stop()
    return report, stats
