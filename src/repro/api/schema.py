"""A dependency-free JSON Schema validator (draft-07 subset).

CI validates every JSON artifact the toolkit emits (unified Reports,
sweep reports, ``repro.perf`` reports) against the checked-in
``tests/report_schema.json``, and the CI image deliberately installs
nothing beyond pytest — so the validator ships with the package.
Supported keywords are the subset that schema uses: ``type`` (scalar or
list), ``enum``, ``const``, ``required``, ``properties``,
``patternProperties``, ``additionalProperties``, ``items``,
``minimum``, ``minItems``, ``pattern``, ``oneOf``/``anyOf``/``allOf``,
and local ``$ref`` (``#/$defs/...`` / ``#/definitions/...``). Unknown
keywords are rejected loudly rather than silently skipped, so the
schema cannot drift ahead of the validator.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

#: Keywords the validator understands; anything else in a schema object
#: is an error (annotation-only keys are whitelisted as no-ops).
_KNOWN_KEYWORDS = {
    "type", "enum", "const", "required", "properties",
    "patternProperties", "additionalProperties", "items",
    "minimum", "minItems", "pattern", "oneOf", "anyOf", "allOf", "$ref",
}
_ANNOTATIONS = {"$schema", "$id", "$defs", "definitions", "title",
                "description", "examples", "default", "$comment"}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """The schema itself is malformed or uses unsupported keywords."""


class ValidationError(ValueError):
    """The instance does not satisfy the schema.

    ``path`` points at the offending location (JSON-pointer-ish,
    ``$.metrics["queries.issued"]``).
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


def _check_type(value, expected, path: str) -> None:
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        if name not in _TYPES:
            raise SchemaError(f"unknown type {name!r} in schema")
        python_type = _TYPES[name]
        if isinstance(value, python_type):
            # bool is an int subclass; "integer"/"number" must not
            # accept True/False.
            if name in ("integer", "number") and isinstance(value, bool):
                continue
            return
    raise ValidationError(
        path,
        f"expected {' or '.join(names)}, got {type(value).__name__}",
    )


def _resolve_ref(ref: str, root: dict) -> dict:
    if not ref.startswith("#/"):
        raise SchemaError(f"only local $ref supported, got {ref!r}")
    node = root
    for token in ref[2:].split("/"):
        token = token.replace("~1", "/").replace("~0", "~")
        if not isinstance(node, dict) or token not in node:
            raise SchemaError(f"unresolvable $ref {ref!r}")
        node = node[token]
    return node


def validate(instance, schema: dict, root: Optional[dict] = None,
             path: str = "$") -> None:
    """Raise :class:`ValidationError` unless *instance* satisfies
    *schema*; returns ``None`` on success."""
    if root is None:
        root = schema
    if not isinstance(schema, dict):
        raise SchemaError(f"schema at {path} must be an object")
    unknown = set(schema) - _KNOWN_KEYWORDS - _ANNOTATIONS
    if unknown:
        raise SchemaError(
            f"unsupported schema keywords at {path}: {', '.join(sorted(unknown))}"
        )

    if "$ref" in schema:
        validate(instance, _resolve_ref(schema["$ref"], root), root, path)
        return
    if "type" in schema:
        _check_type(instance, schema["type"], path)
    if "enum" in schema and instance not in schema["enum"]:
        raise ValidationError(path, f"{instance!r} not in {schema['enum']!r}")
    if "const" in schema and instance != schema["const"]:
        raise ValidationError(
            path, f"expected {schema['const']!r}, got {instance!r}"
        )
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            raise ValidationError(
                path, f"{instance} < minimum {schema['minimum']}"
            )
    if "pattern" in schema and isinstance(instance, str):
        if not re.search(schema["pattern"], instance):
            raise ValidationError(
                path, f"{instance!r} does not match /{schema['pattern']}/"
            )

    for combinator in ("allOf", "anyOf", "oneOf"):
        if combinator not in schema:
            continue
        branches = schema[combinator]
        errors: List[str] = []
        matches = 0
        for index, branch in enumerate(branches):
            try:
                validate(instance, branch, root, path)
                matches += 1
            except ValidationError as exc:
                errors.append(f"[{index}] {exc}")
        if combinator == "allOf" and errors:
            raise ValidationError(path, f"allOf failed: {'; '.join(errors)}")
        if combinator == "anyOf" and matches == 0:
            raise ValidationError(path, f"anyOf failed: {'; '.join(errors)}")
        if combinator == "oneOf" and matches != 1:
            raise ValidationError(
                path,
                f"oneOf matched {matches} branches (need exactly 1)"
                + (f": {'; '.join(errors)}" if matches == 0 else ""),
            )

    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise ValidationError(path, f"missing required key {key!r}")
        properties = schema.get("properties", {})
        patterns = schema.get("patternProperties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            child = f"{path}[{key!r}]"
            matched = False
            if key in properties:
                matched = True
                validate(value, properties[key], root, child)
            for pattern, subschema in patterns.items():
                if re.search(pattern, key):
                    matched = True
                    validate(value, subschema, root, child)
            if not matched:
                if additional is False:
                    raise ValidationError(path, f"unexpected key {key!r}")
                if isinstance(additional, dict):
                    validate(value, additional, root, child)
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            raise ValidationError(
                path,
                f"{len(instance)} items < minItems {schema['minItems']}",
            )
        if "items" in schema:
            for index, item in enumerate(instance):
                validate(item, schema["items"], root, f"{path}[{index}]")


def is_valid(instance, schema: dict) -> bool:
    try:
        validate(instance, schema)
    except ValidationError:
        return False
    return True


def load_schema(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
