"""One API, three substrates: ``RunSpec`` in, versioned ``Report`` out.

The façade over everything the toolkit can execute:

* :class:`~repro.api.spec.RunSpec` — a declarative run description
  (scenario × workload × caching × ``substrate``) plus execution knobs
  (seed, repeats, workers, live-loop or fleet options);
* :func:`~repro.api.runner.run` — compiles the spec to a
  :class:`~repro.scenarios.ScenarioRunner` execution (``substrate="sim"``),
  a serve+loadtest pairing (``substrate="live"``), or a
  :func:`~repro.fleet.run_fleet` aggregate pass (``substrate="fleet"``)
  and returns
* :class:`~repro.api.report.Report` — one versioned result document
  with stable dotted metric names, identical non-namespaced key sets
  on every substrate, and ``to_json()``/``from_json()`` round-tripping.

Quick use::

    from repro.api import RunSpec, run

    report = run(RunSpec.from_spec("one-hop,transport=coap,queries=20"))
    print(report.metrics["latency.p95_ms"])

    live = run("transport=coap,queries=20,substrate=live")
    print(report.common_metrics().keys() == live.common_metrics().keys())

Attribute access is lazy (PEP 562): importing :mod:`repro.api` for the
shared :data:`~repro.api.report.REPORT_VERSION` stamp does not pull in
the scenario engine or the live runtime.
"""

from __future__ import annotations

from importlib import import_module

#: Public name -> defining submodule (resolved on first access).
_EXPORTS = {
    "CACHE_METRICS": ".report",
    "LATENCY_METRICS": ".report",
    "REPORT_VERSION": ".report",
    "SUBSTRATES": ".report",
    "Report": ".report",
    "ReportError": ".report",
    "latency_metrics": ".report",
    "provenance": ".report",
    "report_from_experiment_result": ".report",
    "report_from_loadgen": ".report",
    "ApiError": ".spec",
    "FleetOptions": ".spec",
    "LiveOptions": ".spec",
    "RunSpec": ".spec",
    "run": ".runner",
    # NOTE: the schema *validate* function is not re-exported here —
    # the name belongs to the ``repro.api.validate`` CLI module; import
    # the function from :mod:`repro.api.schema` directly.
    "SchemaError": ".schema",
    "ValidationError": ".schema",
    "is_valid": ".schema",
    "load_schema": ".schema",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module_name, __name__), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
