"""``python -m repro.api.validate SCHEMA FILE [FILE...]`` — validate
JSON artifacts against the checked-in report schema.

The CI workflow runs this over the live-smoke and perf-smoke artifacts
so any drift between what the toolkit emits and what
``tests/report_schema.json`` promises fails the build. Exit status: 0
when every file validates, 1 on the first validation failure, 2 on
unreadable inputs or a malformed schema.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from .schema import SchemaError, ValidationError, load_schema, validate


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) < 2:
        print(
            "usage: python -m repro.api.validate SCHEMA FILE [FILE...]",
            file=sys.stderr,
        )
        return 2
    schema_path, *files = args
    try:
        schema = load_schema(schema_path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load schema {schema_path}: {exc}",
              file=sys.stderr)
        return 2
    status = 0
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                instance = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot load {path}: {exc}", file=sys.stderr)
            return 2
        try:
            validate(instance, schema)
        except ValidationError as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            status = 1
        except SchemaError as exc:
            print(f"error: malformed schema: {exc}", file=sys.stderr)
            return 2
        else:
            print(f"ok   {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
