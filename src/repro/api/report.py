"""The unified, versioned result document of the ``repro.api`` façade.

One :class:`Report` describes the outcome of one run regardless of the
substrate that produced it: a discrete-event simulation
(:class:`~repro.scenarios.ScenarioRunner`), or a wall-clock
serve+loadtest pairing (:mod:`repro.live`). Metric names are **stable
dotted identifiers** shared by both substrates:

``queries.*``
    ``issued``, ``succeeded``, ``failed``, ``timeouts``,
    ``rcode_failures``, ``success_rate``.
``latency.*``
    ``p50_ms``, ``p95_ms``, ``p99_ms``, ``mean_ms``, ``max_ms``
    (``null`` when no query succeeded).
``throughput.qps``
    Successful resolutions per second over the span successes landed in.
``cache.<location>.*``
    Per-location cache counters and ratios for the *client-side* cache
    locations the run's spec enabled (``client_dns``, ``client_coap``):
    ``hits``, ``misses``, ``stale_hits``, ``validations``,
    ``validation_failures``, ``hit_ratio``, ``stale_ratio``,
    ``validation_ratio``.

Everything only one substrate can measure is **explicitly namespaced**
under ``sim.*`` (link frames/bytes, resolver/proxy cache stats),
``live.*`` (wall-clock elapsed time, offered rate, loop mode, server
counters), or ``fleet.*`` (client count, sampling scale, service-model
calibration — see :mod:`repro.fleet`). Reports produced from the same
:class:`~repro.api.spec.RunSpec` on different substrates therefore
carry identical non-namespaced key sets and diff directly.

This module is import-light on purpose (stdlib only at module level):
:mod:`repro.live.loadgen` and :mod:`repro.perf` both import the shared
:data:`REPORT_VERSION` / :func:`provenance` stamp from here without
pulling in the scenario engine.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

#: Schema version shared by every JSON document the toolkit emits
#: (unified Reports, the loadgen report, ``experiment --sweep --json``,
#: and ``repro.perf`` reports). Bump on breaking changes. Version 2
#: introduced the unified Report; version 1 was the loadgen-only report.
REPORT_VERSION = 2

#: Every substrate a RunSpec can execute on. Single-sourced: RunSpec
#: validation, Report validation, the ``common_metrics()`` namespace
#: filter, and ``tests/report_schema.json`` (via the schema-sync test)
#: all derive from this tuple, so adding a substrate is one edit here
#: plus the matching schema entry.
SUBSTRATES = ("sim", "live", "fleet")

#: The metric-key prefixes that mark substrate-namespaced metrics —
#: everything else is the common, substrate-agnostic vocabulary.
SUBSTRATE_NAMESPACES = tuple(f"{substrate}." for substrate in SUBSTRATES)

#: Sub-metrics every cache location reports, in emission order.
CACHE_METRICS = (
    "hits", "misses", "stale_hits", "validations", "validation_failures",
    "hit_ratio", "stale_ratio", "validation_ratio",
)

#: Cache locations that live on the client side — the only locations
#: both substrates can observe, hence the only non-namespaced ones.
CLIENT_CACHE_LOCATIONS = ("client_dns", "client_coap")

#: Latency quantile keys of the common vocabulary (milliseconds).
LATENCY_METRICS = ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms")


class ReportError(ValueError):
    """A malformed or version-incompatible report document."""


@lru_cache(maxsize=1)
def _git_commit() -> str:
    """The repository commit this process runs from (or ``unknown``)."""
    try:
        import os

        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def provenance() -> Dict[str, str]:
    """The shared provenance stamp: interpreter, platform, git commit.

    One function for every JSON artifact so reports from different
    subsystems (api, loadgen, sweep, perf) stay attributable to the
    same build the same way.
    """
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git": _git_commit(),
    }


def latency_metrics(latencies_s: Sequence[float]) -> Dict[str, Optional[float]]:
    """The common ``latency.*`` values (ms) from raw seconds samples."""
    if not latencies_s:
        return {f"latency.{key}": None for key in LATENCY_METRICS}
    from repro.experiments.metrics import percentile

    return {
        "latency.p50_ms": round(percentile(latencies_s, 50) * 1000, 3),
        "latency.p95_ms": round(percentile(latencies_s, 95) * 1000, 3),
        "latency.p99_ms": round(percentile(latencies_s, 99) * 1000, 3),
        "latency.mean_ms": round(
            sum(latencies_s) / len(latencies_s) * 1000, 3
        ),
        "latency.max_ms": round(max(latencies_s) * 1000, 3),
    }


def _cache_location_metrics(prefix: str, stats) -> Dict[str, object]:
    """One location's :data:`CACHE_METRICS` from a ``CacheStats``-like
    object (attribute access) or a plain mapping."""
    values: Dict[str, object] = {}
    for key in CACHE_METRICS:
        if isinstance(stats, dict):
            values[f"{prefix}.{key}"] = stats.get(key, 0)
        else:
            values[f"{prefix}.{key}"] = getattr(stats, key)
    return values


@dataclass
class Report:
    """One run's outcome, versioned and substrate-agnostic.

    ``spec`` is the JSON-ready description of the
    :class:`~repro.api.spec.RunSpec` that produced the run; ``metrics``
    maps the stable dotted names documented in the module docstring to
    scalars. ``raw`` keeps the substrate-native result object (an
    :class:`~repro.experiments.resolution.ExperimentResult`, a list of
    them, or the loadgen dict) for Python callers — it is never
    serialised and does not participate in equality.
    """

    substrate: str
    spec: Dict[str, object]
    metrics: Dict[str, object]
    report_version: int = REPORT_VERSION
    provenance: Dict[str, str] = field(default_factory=provenance)
    telemetry: Optional[List[Dict[str, object]]] = None
    raw: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.substrate not in SUBSTRATES:
            raise ReportError(
                f"unknown substrate {self.substrate!r} "
                f"(known: {', '.join(SUBSTRATES)})"
            )

    # -- (de)serialisation -------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """The JSON document (plain dict, ``json.dumps``-ready as-is).

        The ``telemetry`` time series (per-second run snapshots, the
        :mod:`repro.obs.telemetry` vocabulary) appears only when the
        run recorded one — single-repeat runs on either substrate.
        """
        payload: Dict[str, object] = {
            "report_version": self.report_version,
            "substrate": self.substrate,
            "spec": self.spec,
            "provenance": self.provenance,
            "metrics": dict(self.metrics),
        }
        if self.telemetry is not None:
            payload["telemetry"] = list(self.telemetry)
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Report":
        """Rebuild a Report from :meth:`to_json` output."""
        if not isinstance(payload, dict):
            raise ReportError(f"report must be an object, got {type(payload)}")
        missing = [
            key
            for key in ("report_version", "substrate", "spec", "metrics")
            if key not in payload
        ]
        if missing:
            raise ReportError(f"report is missing keys: {', '.join(missing)}")
        version = payload["report_version"]
        if not isinstance(version, int) or version < 1:
            raise ReportError(f"bad report_version: {version!r}")
        telemetry = payload.get("telemetry")
        return cls(
            substrate=payload["substrate"],
            spec=dict(payload["spec"]),
            metrics=dict(payload["metrics"]),
            report_version=version,
            provenance=dict(payload.get("provenance", {})),
            telemetry=list(telemetry) if telemetry is not None else None,
        )

    # -- accessors ---------------------------------------------------------

    def common_metrics(self) -> Dict[str, object]:
        """The substrate-agnostic (non-namespaced) metric subset."""
        return {
            key: value
            for key, value in self.metrics.items()
            if not key.startswith(SUBSTRATE_NAMESPACES)
        }

    def __getitem__(self, key: str) -> object:
        return self.metrics[key]


# -- substrate converters --------------------------------------------------

#: Error-name fragments classified as timeouts (sim outcomes record the
#: raising exception's type name).
_TIMEOUT_MARKERS = ("timeout",)

#: Error-name fragments classified as response-code failures.
_RCODE_MARKERS = ("rcode", "nxdomain", "servfail", "docerror")


def _classify_error(error_name: str) -> str:
    lowered = error_name.lower()
    if any(marker in lowered for marker in _TIMEOUT_MARKERS):
        return "timeout"
    if any(marker in lowered for marker in _RCODE_MARKERS):
        return "rcode"
    return "other"


def report_from_experiment_result(
    results,
    spec: Optional[Dict[str, object]] = None,
) -> Report:
    """Build the unified Report from simulation output.

    *results* is one :class:`~repro.experiments.resolution.ExperimentResult`
    or a list of them (repeated runs pool their samples: latencies and
    counters aggregate, cache stats merge per location).
    """
    from repro.cache import CacheStats

    single = not isinstance(results, (list, tuple))
    pooled = [results] if single else list(results)
    if not pooled:
        raise ReportError("cannot report on zero experiment results")

    issued = succeeded = timeouts = rcode_failures = 0
    latencies: List[float] = []
    qps_values: List[float] = []
    link_totals = {
        "frames_1hop": 0, "frames_2hop": 0,
        "bytes_1hop": 0, "bytes_2hop": 0,
        "queries_frames": 0, "responses_frames": 0,
    }
    cache_pool: Dict[str, CacheStats] = {}
    for result in pooled:
        issued += len(result.outcomes)
        run_succeeded = 0
        # Every repetition restarts the simulated clock, so throughput
        # must be derived per run (first arrival -> last success) and
        # averaged — the same aggregation the live substrate applies to
        # its per-repeat achieved qps.
        first_issue: Optional[float] = None
        last_done: Optional[float] = None
        for outcome in result.outcomes:
            if outcome.resolution_time is not None:
                run_succeeded += 1
                latencies.append(outcome.resolution_time)
                done = outcome.issued_at + outcome.resolution_time
                last_done = done if last_done is None else max(last_done, done)
            elif outcome.error:
                kind = _classify_error(outcome.error)
                if kind == "timeout":
                    timeouts += 1
                elif kind == "rcode":
                    rcode_failures += 1
            if first_issue is None or outcome.issued_at < first_issue:
                first_issue = outcome.issued_at
        succeeded += run_succeeded
        span = (
            last_done - first_issue
            if last_done is not None and first_issue is not None
            else 0.0
        )
        qps_values.append(run_succeeded / span if span > 0 else 0.0)
        for key in link_totals:
            link_totals[key] += getattr(result.link, key)
        for location, stats in result.cache_stats.items():
            cache_pool.setdefault(
                location, CacheStats()
            ).merge(stats)

    metrics: Dict[str, object] = {
        "queries.issued": issued,
        "queries.succeeded": succeeded,
        "queries.failed": issued - succeeded,
        "queries.timeouts": timeouts,
        "queries.rcode_failures": rcode_failures,
        "queries.success_rate": succeeded / issued if issued else 0.0,
    }
    metrics.update(latency_metrics(latencies))
    metrics["throughput.qps"] = round(
        sum(qps_values) / len(qps_values), 3
    )
    # Client-side cache locations are the common vocabulary; everything
    # only the simulator can see (resolver, proxy) is sim-namespaced.
    for location in sorted(cache_pool):
        stats = cache_pool[location]
        normalized = location.replace("-", "_")
        if normalized in CLIENT_CACHE_LOCATIONS:
            metrics.update(
                _cache_location_metrics(f"cache.{normalized}", stats)
            )
        else:
            metrics.update(
                _cache_location_metrics(f"sim.cache.{normalized}", stats)
            )
    for key, value in link_totals.items():
        metrics[f"sim.link.{key}"] = value
    metrics["sim.repeats"] = len(pooled)
    # The telemetry timeline only makes sense for one run: repeats
    # restart the simulated clock, so their per-second series would
    # overlay rather than concatenate.
    telemetry = None
    if len(pooled) == 1 and pooled[0].outcomes:
        from repro.obs.telemetry import timeline_from_outcomes

        telemetry = timeline_from_outcomes(pooled[0].outcomes)
    return Report(
        substrate="sim",
        spec=spec if spec is not None else {},
        metrics=metrics,
        telemetry=telemetry,
        raw=results if not single else pooled[0],
    )


#: Per-load-worker counters surfaced as ``live.workers.load.<i>.*``.
_LOAD_WORKER_METRICS = (
    "queries", "succeeded", "failed", "timeouts", "rcode_failures",
    "achieved_qps",
)

#: Per-serve-worker counters surfaced as ``live.workers.serve.<i>.*``.
_SERVE_WORKER_METRICS = (
    "queries_handled", "datagrams_received", "datagrams_sent",
)


def _worker_metrics(pooled, server_stats) -> Dict[str, object]:
    """The ``live.workers.*`` namespace from sharded-run detail.

    Load-side detail rides in each merged loadgen report's ``workers``
    block (:func:`repro.live.workers.merge_loadgen_reports`); serve-side
    detail in *server_stats*' ``workers``/``runtime`` blocks
    (:func:`repro.live.workers.merge_server_stats`). Per-worker counters
    sum index-by-index across pooled repeats — summing any
    ``live.workers.load.<i>.queries`` column therefore reproduces the
    top-level ``queries.issued``. Single-process runs carry none of
    these blocks and emit nothing, keeping their metric key set
    identical to previous releases.
    """
    metrics: Dict[str, object] = {}
    load_totals: Dict[int, Dict[str, float]] = {}
    load_failed = 0
    for report in pooled:
        block = report.get("workers")
        if not isinstance(block, dict):
            continue
        load_failed += block.get("load_failed", 0)
        for entry in block.get("load", ()):
            totals = load_totals.setdefault(
                int(entry.get("worker", 0)),
                {key: 0 for key in _LOAD_WORKER_METRICS},
            )
            for key in _LOAD_WORKER_METRICS:
                totals[key] += entry.get(key, 0)
    if load_totals:
        metrics["live.workers.load.count"] = len(load_totals)
        metrics["live.workers.load.failed"] = load_failed
        for index in sorted(load_totals):
            for key in _LOAD_WORKER_METRICS:
                value = load_totals[index][key]
                metrics[f"live.workers.load.{index}.{key}"] = (
                    round(value, 3) if key == "achieved_qps" else value
                )
    if server_stats:
        runtime = server_stats.get("runtime")
        per_worker = server_stats.get("workers")
        if isinstance(runtime, dict):
            metrics["live.workers.serve.count"] = runtime.get(
                "serve_workers", 1
            )
            metrics["live.workers.serve.failed"] = server_stats.get(
                "workers_failed", 0
            )
            failed_workers = server_stats.get("failed_workers", [])
            metrics["live.workers.serve.failed_workers"] = (
                ",".join(str(i) for i in failed_workers)
                if failed_workers else None
            )
            metrics["live.workers.reuseport"] = bool(
                runtime.get("reuseport")
            )
            metrics["live.workers.uvloop"] = bool(runtime.get("uvloop"))
            metrics["live.workers.warning"] = runtime.get("warning")
        if isinstance(per_worker, list):
            for entry in per_worker:
                index = entry.get("worker", 0)
                for key in _SERVE_WORKER_METRICS:
                    if key in entry:
                        metrics[f"live.workers.serve.{index}.{key}"] = (
                            entry[key]
                        )
    return metrics


def report_from_loadgen(
    reports,
    spec: Optional[Dict[str, object]] = None,
    server_stats: Optional[Dict[str, object]] = None,
) -> Report:
    """Build the unified Report from live load-generation output.

    *reports* is one :func:`~repro.live.loadgen.generate_load` report
    dict or a list of them (repeats pool: counters sum, latency
    quantiles recompute from the pooled ``latencies_ms`` samples when
    present, falling back to the single report's summary otherwise).
    *server_stats* optionally attaches the paired
    :class:`~repro.live.server.DocLiveServer` counters under
    ``live.server.*``.
    """
    single = not isinstance(reports, (list, tuple))
    pooled = [reports] if single else list(reports)
    if not pooled:
        raise ReportError("cannot report on zero loadgen reports")

    counters = {
        "queries": 0, "succeeded": 0, "failed": 0,
        "timeouts": 0, "rcode_failures": 0,
    }
    latencies_ms: List[float] = []
    have_samples = all("latencies_ms" in report for report in pooled)
    elapsed = 0.0
    qps_values: List[float] = []
    cache_pool: Dict[str, Dict[str, float]] = {}
    for report in pooled:
        for key in counters:
            counters[key] += report[key]
        elapsed += report["elapsed_s"]
        qps_values.append(report["achieved_qps"])
        if have_samples:
            latencies_ms.extend(report["latencies_ms"])
        for location, stats in report.get("cache", {}).items():
            pool = cache_pool.setdefault(location, {})
            for key in ("hits", "misses", "stale_hits", "validations",
                        "validation_failures"):
                pool[key] = pool.get(key, 0) + stats.get(key, 0)

    completed = counters["succeeded"] + counters["failed"]
    metrics: Dict[str, object] = {
        "queries.issued": counters["queries"],
        "queries.succeeded": counters["succeeded"],
        "queries.failed": counters["failed"],
        "queries.timeouts": counters["timeouts"],
        "queries.rcode_failures": counters["rcode_failures"],
        "queries.success_rate": (
            counters["succeeded"] / completed if completed else 0.0
        ),
    }
    if have_samples:
        metrics.update(latency_metrics([ms / 1000 for ms in latencies_ms]))
    else:
        summary = pooled[0]["latency_ms"]
        for key in LATENCY_METRICS:
            metrics[f"latency.{key}"] = summary[key.replace("_ms", "")]
    metrics["throughput.qps"] = (
        round(sum(qps_values) / len(qps_values), 3) if qps_values else 0.0
    )
    for location in sorted(cache_pool):
        pool = cache_pool[location]
        hits, misses = pool.get("hits", 0), pool.get("misses", 0)
        stale = pool.get("stale_hits", 0)
        validations = pool.get("validations", 0)
        lookups = hits + misses + stale
        # Recompute the derived ratios from the pooled counters with
        # the exact repro.cache.CacheStats definitions (in particular,
        # validation_ratio is validations *per stale hit*) so sim and
        # live values of the same metric mean the same thing.
        pool["hit_ratio"] = hits / lookups if lookups else 0.0
        pool["stale_ratio"] = stale / lookups if lookups else 0.0
        pool["validation_ratio"] = validations / stale if stale else 0.0
        metrics.update(_cache_location_metrics(f"cache.{location}", pool))

    first = pooled[0]
    metrics["live.mode"] = first["mode"]
    metrics["live.offered_rate_qps"] = first["offered_rate_qps"]
    metrics["live.concurrency"] = first["concurrency"]
    metrics["live.elapsed_s"] = round(elapsed, 3)
    metrics["live.repeats"] = len(pooled)
    metrics.update(_worker_metrics(pooled, server_stats))
    if server_stats:
        for key in ("queries_handled", "datagrams_received",
                    "datagrams_sent", "validations_sent"):
            if key in server_stats:
                metrics[f"live.server.{key}"] = server_stats[key]
        resolver_cache = server_stats.get("resolver_cache")
        if isinstance(resolver_cache, dict):
            for key, value in resolver_cache.items():
                metrics[f"live.cache.resolver.{key}"] = value
    # Same single-run rule as the sim side: repeats restart the clock,
    # so only an unrepeated run carries its per-second series.
    telemetry = pooled[0].get("telemetry") if len(pooled) == 1 else None
    return Report(
        substrate="live",
        spec=spec if spec is not None else {},
        metrics=metrics,
        telemetry=list(telemetry) if telemetry else None,
        raw=reports if not single else pooled[0],
    )


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """``python -m repro.api.report`` — print the provenance stamp."""
    import json

    print(json.dumps(
        {"report_version": REPORT_VERSION, "provenance": provenance()},
        indent=2,
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
