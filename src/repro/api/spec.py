"""The substrate-agnostic run specification of the ``repro.api`` façade.

A :class:`RunSpec` is everything one run needs, on any substrate: a
declarative :class:`~repro.scenarios.Scenario` (transport × topology ×
workload × caching), the ``substrate`` to execute it on (``"sim"``,
``"live"``, or ``"fleet"``), and the execution knobs (seed override,
repeats, worker processes, live-loop or fleet options).
``repro.api.run(spec)`` compiles it to a
:class:`~repro.scenarios.ScenarioRunner` execution, a serve+loadtest
pairing, or a :func:`~repro.fleet.run_fleet` aggregate pass and returns
one :class:`~repro.api.report.Report` every way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.fleet.options import FleetOptions, FleetOptionsError
from repro.scenarios import Scenario, ScenarioError, scenario_from_spec

from .report import SUBSTRATES


class ApiError(ScenarioError):
    """An inconsistent RunSpec.

    Subclasses :class:`~repro.scenarios.ScenarioError` so the CLI's
    one misconfiguration handler covers the façade too.
    """


@dataclass(frozen=True)
class LiveOptions:
    """Knobs only the live substrate consumes.

    ``host=None`` (the default) self-serves: ``run()`` stands up a
    loopback :class:`~repro.live.server.DocLiveServer` on an ephemeral
    port (``port=0``) and drives the load against it — the zero-config
    serve+loadtest pairing. Point ``host``/``port`` at an already
    running server to measure it instead (the server must share the
    spec's name universe).

    ``serve_workers`` / ``load_workers`` above 1 shard the pairing
    across processes (:mod:`repro.live.workers`): N SO_REUSEPORT
    server workers, M distributed load generators, one merged Report
    with per-worker detail under ``live.workers.*``. Both default to 1
    — the single-process path of previous releases, bit-identical.
    """

    host: Optional[str] = None
    port: int = 0
    mode: str = "open"
    concurrency: int = 8
    timeout: float = 10.0
    dataset: Optional[str] = None
    name_seed: int = 7
    serve_workers: int = 1
    load_workers: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ApiError(f"unknown live mode {self.mode!r} (open or closed)")
        if self.concurrency < 1:
            raise ApiError("concurrency must be >= 1")
        if self.timeout <= 0:
            raise ApiError("timeout must be positive")
        if self.serve_workers < 1:
            raise ApiError("serve_workers must be >= 1")
        if self.load_workers < 1:
            raise ApiError("load_workers must be >= 1")
        if self.serve_workers > 1 and self.host is not None:
            raise ApiError(
                "serve_workers applies to self-served runs only "
                "(drop live-host, or shard the external server itself)"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "port": self.port,
            "mode": self.mode,
            "concurrency": self.concurrency,
            "timeout": self.timeout,
            "dataset": self.dataset,
            "name_seed": self.name_seed,
            "serve_workers": self.serve_workers,
            "load_workers": self.load_workers,
        }


@dataclass(frozen=True)
class RunSpec:
    """One run, ready for either substrate.

    ``seed=None`` defers to the scenario's own seed; an explicit value
    overrides it (``repeats`` > 1 derives per-repetition seeds the same
    way :func:`~repro.experiments.resolution.run_repeated` does).
    ``workers`` fans repeated simulations out over a process pool.
    """

    scenario: Scenario = field(default_factory=Scenario)
    substrate: str = "sim"
    seed: Optional[int] = None
    repeats: int = 1
    workers: Optional[int] = None
    live: LiveOptions = field(default_factory=LiveOptions)
    fleet: FleetOptions = field(default_factory=FleetOptions)

    def __post_init__(self) -> None:
        if self.substrate not in SUBSTRATES:
            raise ApiError(
                f"unknown substrate {self.substrate!r} "
                f"(known: {', '.join(SUBSTRATES)})"
            )
        if self.repeats < 1:
            raise ApiError("repeats must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ApiError("workers must be >= 1")
        if self.substrate == "live":
            from repro.live.wiring import LIVE_TRANSPORTS

            if self.scenario.transport not in LIVE_TRANSPORTS:
                raise ApiError(
                    f"transport {self.scenario.transport!r} cannot run on "
                    f"the live substrate "
                    f"(supported: {', '.join(LIVE_TRANSPORTS)})"
                )
            # An *explicit* caching spec naming the proxy, or the proxy
            # forwarder itself, cannot run live. (When `caching` is
            # None the resolved caching_spec defaults `proxy=True`, but
            # without `use_proxy` no proxy exists — that default must
            # not reject a plain live run.)
            explicit_proxy_cache = (
                self.scenario.caching is not None
                and self.scenario.caching.proxy
            )
            if explicit_proxy_cache or self.scenario.use_proxy:
                raise ApiError(
                    "the live substrate has no forward proxy; use a "
                    "client-side cache placement (client-dns, client-coap)"
                )

    # -- derivation --------------------------------------------------------

    @property
    def effective_seed(self) -> int:
        return self.seed if self.seed is not None else self.scenario.seed

    def to_scenario(self, seed: Optional[int] = None) -> Scenario:
        """The scenario this spec executes (optionally re-seeded)."""
        use = seed if seed is not None else self.effective_seed
        if use == self.scenario.seed:
            return self.scenario
        return self.scenario.with_seed(use)

    def repeat_seeds(self) -> list:
        """Per-repetition seeds (the ``run_repeated`` spacing)."""
        base = self.effective_seed
        return [base + repetition * 1000 for repetition in range(self.repeats)]

    def client_cache_placement(self) -> str:
        """The client-side slice of the caching placement, as the
        ``+``-joined vocabulary the live resolver accepts."""
        caching = self.scenario.caching_spec
        parts = [
            name
            for name, enabled in (
                ("client-dns", caching.client_dns),
                ("client-coap", caching.client_coap),
            )
            if enabled
        ]
        return "+".join(parts) if parts else "none"

    # -- construction ------------------------------------------------------

    @classmethod
    def from_scenario(cls, scenario: Scenario, **overrides) -> "RunSpec":
        return cls(scenario=scenario, **overrides)

    @classmethod
    def from_spec(cls, text: str, base: Optional["RunSpec"] = None) -> "RunSpec":
        """Parse ``"[preset][,key=value]..."`` into a RunSpec.

        Understands every :func:`~repro.scenarios.scenario_from_spec`
        key plus the façade's own: ``substrate``
        (``sim``/``live``/``fleet``), ``repeats``, ``workers``, the
        live-loop keys ``live-host``, ``live-port``, ``mode``,
        ``concurrency``, ``timeout``, ``serve_workers``,
        ``load_workers``, and the fleet keys ``churn``, ``duty_cycle``,
        ``duty_period``, ``flash_crowd``, ``fleet-sample-cap``,
        ``fleet-probe-clients``, ``fleet-probe-queries``.
        """
        base = base if base is not None else cls()
        api_fields: Dict[str, object] = {}
        live_fields: Dict[str, object] = {}
        fleet_fields: Dict[str, object] = {}
        scenario_parts = []
        for part in (p.strip() for p in text.split(",")):
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if "=" not in part:
                scenario_parts.append(part)
            elif key == "substrate":
                api_fields["substrate"] = value.lower()
            elif key == "repeats":
                api_fields["repeats"] = int(value)
            elif key == "workers":
                api_fields["workers"] = int(value)
            elif key == "live-host":
                live_fields["host"] = value
            elif key == "live-port":
                live_fields["port"] = int(value)
            elif key == "mode":
                live_fields["mode"] = value.lower()
            elif key == "concurrency":
                live_fields["concurrency"] = int(value)
            elif key == "timeout":
                live_fields["timeout"] = float(value)
            elif key in ("serve_workers", "serve-workers"):
                live_fields["serve_workers"] = int(value)
            elif key in ("load_workers", "load-workers"):
                live_fields["load_workers"] = int(value)
            elif key == "churn":
                fleet_fields["churn"] = float(value)
            elif key in ("duty_cycle", "duty-cycle"):
                fleet_fields["duty_cycle"] = float(value)
            elif key in ("duty_period", "duty-period"):
                fleet_fields["duty_period"] = float(value)
            elif key in ("flash_crowd", "flash-crowd"):
                fleet_fields["flash_crowd"] = float(value)
            elif key in ("fleet_sample_cap", "fleet-sample-cap"):
                fleet_fields["sample_cap"] = int(value)
            elif key in ("fleet_probe_clients", "fleet-probe-clients"):
                fleet_fields["probe_clients"] = int(value)
            elif key in ("fleet_probe_queries", "fleet-probe-queries"):
                fleet_fields["probe_queries"] = int(value)
            else:
                scenario_parts.append(part)
        scenario = base.scenario
        if scenario_parts:
            scenario = scenario_from_spec(
                ",".join(scenario_parts), base=scenario
            )
        live = replace(base.live, **live_fields) if live_fields else base.live
        try:
            fleet = (
                replace(base.fleet, **fleet_fields)
                if fleet_fields else base.fleet
            )
        except FleetOptionsError as error:
            raise ApiError(str(error)) from error
        return cls(
            scenario=scenario,
            substrate=api_fields.get("substrate", base.substrate),
            seed=base.seed,
            repeats=api_fields.get("repeats", base.repeats),
            workers=api_fields.get("workers", base.workers),
            live=live,
            fleet=fleet,
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The JSON-ready description stamped into a Report's ``spec``."""
        scenario = self.scenario
        workload = scenario.workload
        topology = scenario.topology
        caching = scenario.caching_spec
        spec: Dict[str, object] = {
            "name": scenario.name,
            "substrate": self.substrate,
            "transport": scenario.transport,
            "scheme": scenario.scheme.value,
            "seed": self.effective_seed,
            "repeats": self.repeats,
            "workers": self.workers,
            "workload": {
                "num_queries": workload.num_queries,
                "num_names": workload.num_names,
                "records_per_name": workload.records_per_name,
                "query_rate": workload.query_rate,
                "rtype_mix": [list(pair) for pair in workload.rtype_mix],
                "burst_size": workload.burst_size,
                "ttl": list(workload.ttl),
                "arrival": workload.arrival,
                "burst_on": workload.burst_on,
                "burst_off": workload.burst_off,
                "zipf_alpha": workload.zipf_alpha,
            },
            "caching": {
                "placement": caching.placement_label(),
                "scheme": (
                    caching.scheme.value
                    if caching.scheme is not None else None
                ),
            },
        }
        if self.substrate in ("sim", "fleet"):
            spec["topology"] = {
                "name": topology.name,
                "hops": topology.hops,
                "clients": topology.clients,
                "loss": topology.loss,
                "l2_retries": topology.l2_retries,
                "wired_tail": topology.wired_tail,
            }
            spec["use_proxy"] = scenario.use_proxy
            if self.substrate == "fleet":
                spec["fleet"] = self.fleet.to_dict()
        else:
            spec["live"] = self.live.to_dict()
        return spec
