"""``repro.fleet`` — the million-client aggregate simulation substrate.

The third substrate (``substrate="fleet"``): instead of per-node
protocol stacks (sim) or real sockets (live), a fleet run represents
clients as columns — batched arrivals, an aggregate cache model with
exact per-client ``KeyedCache`` semantics, and a per-transport
service-time model calibrated once per scenario against the exact
simulator. Aggregate metrics reproduce the exact simulator's in
expectation at a small fraction of the cost, which buys fleet sizes
(and fleet-only dimensions: churn, duty cycling, flash crowds) the
per-node substrates cannot reach.

Entry points: :func:`run_fleet` executes a
:class:`~repro.scenarios.Scenario` under :class:`FleetOptions`;
:func:`report_from_fleet` turns the result(s) into the unified
:class:`~repro.api.report.Report`. Most callers go through
``repro.api.run(RunSpec(..., substrate="fleet"))`` instead.
"""

from .arrivals import (
    SamplePlan,
    defer_to_wake,
    flash_crowd_warp,
    generate_arrivals,
    plan_sample,
    sampled_workload,
    wake_time,
)
from .cache import FleetCacheModel
from .engine import FleetResult, run_fleet
from .options import (
    DEFAULT_PROBE_CLIENTS,
    DEFAULT_SAMPLE_CAP,
    FleetOptions,
    FleetOptionsError,
)
from .report import report_from_fleet
from .service import Calibration, ServiceModel, calibrate, probe_scenario

__all__ = [
    "Calibration",
    "DEFAULT_PROBE_CLIENTS",
    "DEFAULT_SAMPLE_CAP",
    "FleetCacheModel",
    "FleetOptions",
    "FleetOptionsError",
    "FleetResult",
    "SamplePlan",
    "ServiceModel",
    "calibrate",
    "defer_to_wake",
    "flash_crowd_warp",
    "generate_arrivals",
    "plan_sample",
    "probe_scenario",
    "report_from_fleet",
    "run_fleet",
    "sampled_workload",
    "wake_time",
]
