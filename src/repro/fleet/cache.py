"""Aggregate client-cache model for the fleet engine.

The exact simulator builds a full protocol stack per client; the fleet
keeps *only* the cache state — per active client, the same bounded
:class:`~repro.cache.KeyedCache` stores the per-node stacks use, with
the same policies (client DNS: expired-first, stale entries dropped;
client CoAP: expired-first, stale entries kept for ETag revalidation)
and the same per-name TTL/occupancy behaviour. Every client's counters
pool into one shared :class:`~repro.cache.CacheStats` per location, so
the ``CacheStats`` vocabulary (hits/misses/stale/validations/
evictions) is reproduced exactly for the simulated sample and in
expectation for the scaled fleet.

Caches materialise lazily on a client's first query: a million-client
run with fifty queries holds fifty clients' worth of cache state, and a
sampled run at most the sample cap's worth.

Client churn is applied here: with churn rate λ, a client alive since
its last query survives the gap ``dt`` with probability ``exp(-λ·dt)``
(exponential lifetimes); a replaced client restarts with cold caches.
The survival draws come from the model's own RNG so churn never
perturbs the arrival/name streams.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

from repro.cache import CacheStats, EvictionPolicy, KeyedCache
from repro.scenarios.scenario import CachingSpec


class FleetCacheModel:
    """Per-client cache columns with pooled per-location statistics."""

    def __init__(
        self,
        caching: CachingSpec,
        coap_based: bool,
        coap_active: bool = True,
        churn: float = 0.0,
        model_rng: Optional[random.Random] = None,
    ) -> None:
        self._dns_enabled = caching.client_dns
        # Mirrors the exact stack: a client CoAP cache only exists when
        # the transport has a CoAP layer for it to live in — and may
        # exist without ever being *consulted* (`coap_active=False`),
        # like the per-node stack's cache under plain OSCORE, whose
        # protected requests are not CoAP-cacheable. An existing-but-
        # inactive cache still pools (all-zero) counters, keeping the
        # Report's key set identical to the exact simulator's.
        self._coap_enabled = caching.client_coap and coap_based
        self._coap_consulted = self._coap_enabled and coap_active
        self._dns_capacity = caching.client_dns_capacity
        self._coap_capacity = caching.client_coap_capacity
        self._churn = churn
        self._model_rng = model_rng if model_rng is not None else random.Random(0)
        self._dns: Dict[int, KeyedCache] = {}
        self._coap: Dict[int, KeyedCache] = {}
        self._last_seen: Dict[int, float] = {}
        #: Pooled counters, keyed with the exact runner's location labels.
        self.stats: Dict[str, CacheStats] = {}
        if self._dns_enabled:
            self.stats["client-dns"] = CacheStats()
        if self._coap_enabled:
            self.stats["client-coap"] = CacheStats()

    @property
    def active_clients(self) -> int:
        """Clients whose cache state has materialised."""
        return len(self._last_seen)

    def touch(self, client: int, now: float) -> None:
        """Account for client lifetime between queries (churn model)."""
        last = self._last_seen.get(client)
        self._last_seen[client] = now
        if last is None or self._churn <= 0.0:
            return
        gap = max(0.0, now - last)
        if gap == 0.0:
            return
        if self._model_rng.random() >= math.exp(-self._churn * gap):
            # The original client left the fleet; its replacement
            # starts cold.
            cache = self._dns.get(client)
            if cache is not None:
                cache.clear()
            cache = self._coap.get(client)
            if cache is not None:
                cache.clear()

    # -- per-location access ----------------------------------------------

    def dns(self, client: int) -> Optional[KeyedCache]:
        if not self._dns_enabled:
            return None
        cache = self._dns.get(client)
        if cache is None:
            cache = self._dns[client] = KeyedCache(
                self._dns_capacity,
                policy=EvictionPolicy.EXPIRED_FIRST,
                keep_stale=False,
                stats=self.stats["client-dns"],
            )
        return cache

    def coap(self, client: int) -> Optional[KeyedCache]:
        if not self._coap_consulted:
            return None
        cache = self._coap.get(client)
        if cache is None:
            cache = self._coap[client] = KeyedCache(
                self._coap_capacity,
                policy=EvictionPolicy.EXPIRED_FIRST,
                keep_stale=True,
                stats=self.stats["client-coap"],
            )
        return cache

    # -- scaling -----------------------------------------------------------

    def scaled_stats(self, scale: float) -> Dict[str, Dict[str, float]]:
        """Per-location counters blown up to fleet totals.

        Counters scale linearly (each sampled client stands for
        ``scale`` fleet clients); the derived ratios are recomputed
        from the scaled counters with the exact ``CacheStats``
        definitions, so they match the unscaled ratios up to rounding.
        """
        scaled: Dict[str, Dict[str, float]] = {}
        for location, stats in self.stats.items():
            counters = {
                key: int(round(value * scale))
                for key, value in stats.as_dict().items()
            }
            lookups = (
                counters["hits"] + counters["misses"] + counters["stale_hits"]
            )
            counters["hit_ratio"] = (
                counters["hits"] / lookups if lookups else 0.0
            )
            counters["stale_ratio"] = (
                counters["stale_hits"] / lookups if lookups else 0.0
            )
            counters["validation_ratio"] = (
                counters["validations"] / counters["stale_hits"]
                if counters["stale_hits"] else 0.0
            )
            scaled[location] = counters
        return scaled
