"""Per-transport service-time model, calibrated on the exact simulator.

Every fleet query that misses its client caches pays a *wire exchange*
whose latency/loss/retransmission behaviour depends on the transport
profile, topology, link loss, and block sizes. Instead of re-deriving
those distributions analytically, the model runs the **exact**
simulator once per scenario on a small probe topology (the scenario
with its client count capped and client caches disabled, so every
probe query measures the full network path) and resamples the
empirical distribution it observed:

* success latencies split into the client's **first** exchange (which
  carries DTLS/OSCORE handshake cost) and **subsequent** exchanges;
* timeout and rcode-failure probabilities become deterministic
  expected counts via error accumulators, so a fleet run's failure
  counters match the probe's rates in expectation with near-zero
  variance;
* success latencies are drawn by inverse-CDF resampling at van der
  Corput (low-discrepancy) quantile points, so percentile summaries
  converge to the probe's distribution far faster than i.i.d. uniform
  resampling would.

Calibrations are memoised per process on the probe scenario's identity
— a sweep or repeated run calibrates each cell once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.scenarios.scenario import CachingSpec, Scenario

from .options import FleetOptions

#: Probe-size defaults: at least this many probe queries regardless of
#: the fleet workload (tail resolution), at most this many (probe cost).
_PROBE_QUERIES_MIN = 64
_PROBE_QUERIES_MAX = 160


@dataclass(frozen=True)
class Calibration:
    """What one probe run taught us about the wire path."""

    probe_clients: int
    probe_queries: int
    issued: int
    succeeded: int
    timeouts: int
    rcode_failures: int
    #: Sorted success latencies of each client's first wire exchange.
    first_latencies: Tuple[float, ...]
    #: Sorted success latencies of all subsequent exchanges.
    rest_latencies: Tuple[float, ...]

    @property
    def p_timeout(self) -> float:
        return self.timeouts / self.issued if self.issued else 0.0

    @property
    def p_rcode(self) -> float:
        return self.rcode_failures / self.issued if self.issued else 0.0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.issued if self.issued else 0.0

    def metrics(self) -> Dict[str, object]:
        """The ``fleet.calibration.*`` block of a fleet Report."""
        from repro.experiments.metrics import percentile

        values: Dict[str, object] = {
            "fleet.calibration.probe_clients": self.probe_clients,
            "fleet.calibration.probe_queries": self.probe_queries,
            "fleet.calibration.success_rate": round(self.success_rate, 4),
            "fleet.calibration.p_timeout": round(self.p_timeout, 4),
            "fleet.calibration.p_rcode": round(self.p_rcode, 4),
        }
        pooled = sorted(self.first_latencies + self.rest_latencies)
        values["fleet.calibration.wire_p50_ms"] = (
            round(percentile(pooled, 50) * 1000, 3) if pooled else None
        )
        values["fleet.calibration.wire_p95_ms"] = (
            round(percentile(pooled, 95) * 1000, 3) if pooled else None
        )
        return values


def probe_scenario(scenario: Scenario, options: FleetOptions) -> Scenario:
    """The exact-simulator run the service model calibrates against.

    The scenario itself, with the client count capped at the probe size
    and the *client* caches disabled — every probe query then measures
    the full wire path the fleet's cache misses will pay. Server-side
    state (resolver cache, forward proxy when the scenario has one)
    stays enabled: it is shared infrastructure, part of the path.
    """
    caching = scenario.caching_spec
    probe_clients = min(scenario.topology.clients, options.probe_clients)
    if options.probe_queries is not None:
        probe_queries = options.probe_queries
    else:
        probe_queries = min(
            max(scenario.workload.num_queries, _PROBE_QUERIES_MIN),
            _PROBE_QUERIES_MAX,
        )
    # Preserve the *per-client* query rate (aggregate rate scales with
    # the client count), so probe clients see the fleet's duty — not a
    # million clients' aggregate load funnelled through four nodes. The
    # floor keeps the probe finishing well inside the run-duration
    # cutoff even for very large (hence very slow per-client) fleets.
    probe_rate = (
        scenario.workload.query_rate
        * probe_clients
        / scenario.topology.clients
    )
    probe_rate = max(probe_rate, 2.0 * probe_queries / scenario.run_duration)
    return replace(
        scenario,
        topology=replace(scenario.topology, clients=probe_clients),
        workload=replace(
            scenario.workload,
            num_queries=probe_queries,
            query_rate=probe_rate,
        ),
        caching=CachingSpec(
            client_dns=False,
            client_coap=False,
            proxy=caching.proxy and scenario.use_proxy,
            proxy_capacity=caching.proxy_capacity,
            scheme=caching.scheme,
        ),
        client_dns_cache=False,
        client_coap_cache=False,
    )


def _calibration_key(probe: Scenario) -> Tuple:
    topology = probe.topology
    workload = probe.workload
    return (
        probe.transport,
        probe.scheme.value,
        probe.method,
        probe.block_size,
        probe.use_proxy,
        probe.seed,
        probe.run_duration,
        topology.hops,
        topology.clients,
        topology.loss,
        topology.l2_retries,
        topology.wired_tail,
        workload.num_queries,
        workload.num_names,
        workload.records_per_name,
        workload.query_rate,
        workload.rtype_mix,
        workload.burst_size,
        workload.ttl,
        workload.arrival,
        workload.burst_on,
        workload.burst_off,
        workload.zipf_alpha,
    )


_CALIBRATIONS: Dict[Tuple, Calibration] = {}


def calibrate(scenario: Scenario, options: FleetOptions) -> Calibration:
    """Run (or reuse) the probe for *scenario* and distil its model."""
    from repro.api.report import _classify_error
    from repro.scenarios.runner import ScenarioRunner

    probe = probe_scenario(scenario, options)
    key = _calibration_key(probe)
    cached = _CALIBRATIONS.get(key)
    if cached is not None:
        return cached

    result = ScenarioRunner().run(probe, frame_capture="counts")
    timeouts = rcode = 0
    first: List[float] = []
    rest: List[float] = []
    seen_clients = set()
    for outcome in result.outcomes:
        is_first = outcome.client not in seen_clients
        seen_clients.add(outcome.client)
        if outcome.resolution_time is not None:
            (first if is_first else rest).append(outcome.resolution_time)
        elif outcome.error:
            kind = _classify_error(outcome.error)
            if kind == "timeout":
                timeouts += 1
            elif kind == "rcode":
                rcode += 1
    calibration = Calibration(
        probe_clients=probe.topology.clients,
        probe_queries=probe.workload.num_queries,
        issued=len(result.outcomes),
        succeeded=len(first) + len(rest),
        timeouts=timeouts,
        rcode_failures=rcode,
        first_latencies=tuple(sorted(first)),
        rest_latencies=tuple(sorted(rest)),
    )
    _CALIBRATIONS[key] = calibration
    return calibration


def _van_der_corput(index: int) -> float:
    """Base-2 radical inverse of ``index + 1`` — a (0, 1) sequence."""
    n = index + 1
    value, denominator = 0.0, 1.0
    while n:
        denominator *= 2.0
        value += (n & 1) / denominator
        n >>= 1
    return value


def _quantile(sorted_samples: Tuple[float, ...], u: float) -> float:
    """Linear-interpolated inverse empirical CDF at ``u`` in (0, 1)."""
    count = len(sorted_samples)
    if count == 1:
        return sorted_samples[0]
    position = u * (count - 1)
    low = int(position)
    high = min(low + 1, count - 1)
    fraction = position - low
    return sorted_samples[low] * (1 - fraction) + sorted_samples[high] * fraction


class ServiceModel:
    """Draws wire-exchange outcomes from a :class:`Calibration`.

    Failure scheduling is deterministic (error accumulators — a fleet
    run yields ``round(exchanges × p)`` failures of each kind);
    success latencies resample the probe's empirical distributions at
    low-discrepancy quantile points, with separate streams for a
    client's first exchange and its subsequent ones.
    """

    #: Outcome kinds a draw can produce.
    OK, TIMEOUT, RCODE = "ok", "timeout", "rcode"

    def __init__(self, calibration: Calibration) -> None:
        self._calibration = calibration
        self._timeout_acc = 0.0
        self._rcode_acc = 0.0
        self._first_index = 0
        self._rest_index = 0

    def draw(self, first_exchange: bool) -> Tuple[str, Optional[float]]:
        """One wire exchange: ``(kind, latency_s)``.

        *first_exchange* marks the issuing client's first trip over the
        wire (handshake-bearing transports pay more there). Latency is
        ``None`` for failed exchanges.
        """
        calibration = self._calibration
        self._timeout_acc += calibration.p_timeout
        if self._timeout_acc >= 1.0:
            self._timeout_acc -= 1.0
            return self.TIMEOUT, None
        self._rcode_acc += calibration.p_rcode
        if self._rcode_acc >= 1.0:
            self._rcode_acc -= 1.0
            return self.RCODE, None
        samples = (
            calibration.first_latencies
            if first_exchange
            else calibration.rest_latencies
        )
        if not samples:
            # Fall back to the other stream before giving up: a probe
            # whose every exchange failed models a fleet that times out.
            samples = (
                calibration.rest_latencies
                if first_exchange
                else calibration.first_latencies
            )
        if not samples:
            return self.TIMEOUT, None
        if first_exchange:
            u = _van_der_corput(self._first_index)
            self._first_index += 1
        else:
            u = _van_der_corput(self._rest_index)
            self._rest_index += 1
        return self.OK, _quantile(samples, u)
