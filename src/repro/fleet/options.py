"""Fleet-only execution knobs (the ``FleetOptions`` of a RunSpec).

Import-light on purpose: :mod:`repro.api.spec` pulls this module in at
import time, so it must not drag the engine (and with it the scenario
machinery) along.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


class FleetOptionsError(ValueError):
    """An inconsistent fleet configuration."""


#: Hard ceiling on the number of queries the engine simulates exactly;
#: anything above is represented by a client-sampled sub-fleet whose
#: counters scale up (see :mod:`repro.fleet.arrivals`). 64k sampled
#: queries keep a million-client run comfortably inside one CI core's
#: 60-second budget while leaving percentile estimates tight.
DEFAULT_SAMPLE_CAP = 65536

#: Clients on the exact-simulator probe topology the service-time model
#: calibrates against (capped by the scenario's own client count).
DEFAULT_PROBE_CLIENTS = 4


@dataclass(frozen=True)
class FleetOptions:
    """Knobs only the fleet substrate consumes.

    The fleet-only scenario dimensions the exact simulator cannot
    reach at scale:

    ``churn``
        Fraction of the fleet replaced per second (client lifetimes are
        exponential with mean ``1/churn``). A replaced client restarts
        with cold caches; ``0.0`` (default) disables churn.
    ``duty_cycle`` / ``duty_period``
        Sleepy-node modelling: each client is awake for
        ``duty_cycle × duty_period`` seconds of every ``duty_period``
        second period (per-client phases are spread deterministically).
        Queries arising while a client sleeps are deferred to its next
        wake-up, clumping arrivals at wake boundaries. ``1.0``
        (default) keeps every client always-on.
    ``flash_crowd``
        Arrival-rate multiplier applied over the middle third of the
        nominal run: the base arrival stream is time-warped through the
        inverse cumulative intensity so the total query count is
        preserved while arrivals compress into the crowd window.
        ``1.0`` (default) disables the warp.

    ``sample_cap`` bounds the exactly-simulated query count;
    ``probe_clients``/``probe_queries`` size the calibration run of the
    per-transport service-time model (``probe_queries=None`` derives a
    default from the workload).
    """

    churn: float = 0.0
    duty_cycle: float = 1.0
    duty_period: float = 10.0
    flash_crowd: float = 1.0
    sample_cap: int = DEFAULT_SAMPLE_CAP
    probe_clients: int = DEFAULT_PROBE_CLIENTS
    probe_queries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.churn < 0:
            raise FleetOptionsError("churn must be >= 0")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise FleetOptionsError("duty_cycle must be in (0, 1]")
        if self.duty_period <= 0:
            raise FleetOptionsError("duty_period must be positive")
        if self.flash_crowd < 1.0:
            raise FleetOptionsError("flash_crowd must be >= 1")
        if self.sample_cap < 1:
            raise FleetOptionsError("sample_cap must be >= 1")
        if self.probe_clients < 1:
            raise FleetOptionsError("probe_clients must be >= 1")
        if self.probe_queries is not None and self.probe_queries < 1:
            raise FleetOptionsError("probe_queries must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return {
            "churn": self.churn,
            "duty_cycle": self.duty_cycle,
            "duty_period": self.duty_period,
            "flash_crowd": self.flash_crowd,
            "sample_cap": self.sample_cap,
            "probe_clients": self.probe_clients,
            "probe_queries": self.probe_queries,
        }
