"""Fleet results → the unified :class:`~repro.api.report.Report`.

A fleet Report carries exactly the non-namespaced metric key set the
other substrates emit — ``queries.*``, ``latency.*``,
``throughput.qps``, and ``cache.client_dns.*`` / ``cache.client_coap.*``
when those locations are active — plus a ``fleet.*`` namespaced block
describing the scaling plan, the fleet-only dimensions, and the
service-model calibration. Sampled counters are blown up to fleet
totals by the run's :class:`~repro.fleet.arrivals.SamplePlan` scales;
latency percentiles come straight from the (unscaled) reservoir
samples, since quantiles are scale-invariant under client sampling.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api.report import (
    Report,
    ReportError,
    _cache_location_metrics,
    latency_metrics,
)

from .engine import FleetResult


def _scaled_telemetry(
    result: FleetResult,
) -> Optional[List[Dict[str, object]]]:
    """The per-second timeline, with counts scaled to fleet totals.

    Buckets come from the sampled outcomes via the shared
    :func:`~repro.obs.telemetry.timeline_from_outcomes`; each
    snapshot's counters then scale by the plan's query scale (rounded
    back to integers) and its rate recomputes from the scaled count, so
    the series reads as what the whole fleet did per second. Latency
    quantiles stay unscaled — sampling thins the population, not the
    per-query latency distribution.
    """
    if not result.outcomes:
        return None
    from repro.obs.telemetry import timeline_from_outcomes

    timeline = timeline_from_outcomes(result.outcomes)
    scale = result.plan.query_scale
    if scale == 1.0:
        return timeline
    scaled = []
    for snapshot in timeline:
        entry = dict(snapshot)
        for key in ("queries", "succeeded", "failed", "timeouts"):
            entry[key] = int(round(snapshot[key] * scale))
        interval = snapshot["interval_s"]
        entry["qps"] = round(entry["queries"] / interval, 3) if interval else 0.0
        scaled.append(entry)
    return scaled


def report_from_fleet(
    results,
    spec: Optional[Dict[str, object]] = None,
) -> Report:
    """Build the unified Report from fleet-engine output.

    *results* is one :class:`~repro.fleet.engine.FleetResult` or a list
    of them (repeated runs pool: counters aggregate across repeats,
    latency samples pool, per-location cache counters sum).
    """
    single = not isinstance(results, (list, tuple))
    pooled = [results] if single else list(results)
    if not pooled:
        raise ReportError("cannot report on zero fleet results")

    issued = succeeded = timeouts = rcode_failures = 0
    latencies: List[float] = []
    qps_values: List[float] = []
    cache_totals: Dict[str, Dict[str, float]] = {}
    active_clients = 0
    saturated = False
    for result in pooled:
        plan = result.plan
        scale = plan.query_scale
        run_succeeded = run_timeouts = run_rcode = 0
        first_issue: Optional[float] = None
        last_done: Optional[float] = None
        for outcome in result.outcomes:
            if outcome.resolution_time is not None:
                run_succeeded += 1
                done = outcome.issued_at + outcome.resolution_time
                last_done = done if last_done is None else max(last_done, done)
            elif outcome.error == "TimeoutError":
                run_timeouts += 1
            elif outcome.error == "RcodeError":
                run_rcode += 1
            if first_issue is None or outcome.issued_at < first_issue:
                first_issue = outcome.issued_at
        run_issued = int(round(len(result.outcomes) * scale))
        run_ok = int(round(run_succeeded * scale))
        run_failed = run_issued - run_ok
        # Round the failure breakdown inside the scaled failure total so
        # issued = succeeded + failed always survives the scaling.
        run_to = min(run_failed, int(round(run_timeouts * scale)))
        run_rc = min(run_failed - run_to, int(round(run_rcode * scale)))
        issued += run_issued
        succeeded += run_ok
        timeouts += run_to
        rcode_failures += run_rc
        latencies.extend(result.reservoir.samples)
        span = (
            last_done - first_issue
            if last_done is not None and first_issue is not None
            else 0.0
        )
        # The sampled sub-fleet ran at rate × clients/fleet_clients, so
        # its achieved qps scales back up by the client scale.
        qps_values.append(
            (run_succeeded / span) * plan.client_scale if span > 0 else 0.0
        )
        for location, counters in result.cache_stats.items():
            totals = cache_totals.setdefault(location, {})
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        active_clients += result.active_clients
        saturated = saturated or result.reservoir.saturated

    metrics: Dict[str, object] = {
        "queries.issued": issued,
        "queries.succeeded": succeeded,
        "queries.failed": issued - succeeded,
        "queries.timeouts": timeouts,
        "queries.rcode_failures": rcode_failures,
        "queries.success_rate": succeeded / issued if issued else 0.0,
    }
    metrics.update(latency_metrics(latencies))
    metrics["throughput.qps"] = round(sum(qps_values) / len(qps_values), 3)
    for location in sorted(cache_totals):
        counters = dict(cache_totals[location])
        # Counters summed across repeats; re-derive the ratios so they
        # describe the pooled counters, not an average of averages.
        lookups = (
            counters.get("hits", 0)
            + counters.get("misses", 0)
            + counters.get("stale_hits", 0)
        )
        counters["hit_ratio"] = (
            counters.get("hits", 0) / lookups if lookups else 0.0
        )
        counters["stale_ratio"] = (
            counters.get("stale_hits", 0) / lookups if lookups else 0.0
        )
        counters["validation_ratio"] = (
            counters.get("validations", 0) / counters["stale_hits"]
            if counters.get("stale_hits") else 0.0
        )
        normalized = location.replace("-", "_")
        metrics.update(
            _cache_location_metrics(f"cache.{normalized}", counters)
        )

    head = pooled[0]
    plan = head.plan
    options = head.options
    metrics["fleet.clients"] = plan.fleet_clients
    metrics["fleet.active_clients"] = int(
        round(active_clients / len(pooled) * plan.client_scale)
    )
    metrics["fleet.repeats"] = len(pooled)
    metrics["fleet.sample.queries"] = plan.queries
    metrics["fleet.sample.scale"] = round(plan.query_scale, 3)
    # "Exact" = every fleet query was simulated individually and every
    # success latency kept — the Report equals an exact-sim aggregate up
    # to the service-model approximation, with no sampling error on top.
    metrics["fleet.tolerance.exact"] = plan.exact and not saturated
    metrics["fleet.churn"] = options.churn
    metrics["fleet.duty_cycle"] = options.duty_cycle
    metrics["fleet.flash_crowd"] = options.flash_crowd
    metrics.update(head.calibration.metrics())

    telemetry = _scaled_telemetry(head) if len(pooled) == 1 else None
    return Report(
        substrate="fleet",
        spec=spec if spec is not None else {},
        metrics=metrics,
        telemetry=telemetry,
        raw=results if not single else pooled[0],
    )
