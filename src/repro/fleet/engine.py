"""The fleet engine: one aggregate pass over a run's query columns.

Where the exact simulator schedules per-event callbacks through a heap
and instantiates a protocol stack per client, the fleet engine
generates the whole run as arrays — arrival instants, name draws, and
client assignments in bulk (:mod:`repro.fleet.arrivals`) — and walks
them once in issue order, consulting the aggregate cache model
(:mod:`repro.fleet.cache`) and the calibrated service-time model
(:mod:`repro.fleet.service`) per query. Engine work is
``O(min(num_queries, sample_cap))`` regardless of the fleet size, so a
million-client run costs the same as a sixty-four-thousand-query one.

Semantics mirror the exact per-node stack query-for-query:

* client DNS cache hit → resolved immediately (latency 0), the CoAP
  cache is not consulted;
* DNS miss, fresh client CoAP hit → resolved immediately, the replayed
  response enters the DNS cache with its *remaining* freshness;
* stale CoAP hit → a wire exchange revalidates the entry (counted as a
  validation) and both caches restamp to the full TTL;
* miss everywhere → a wire exchange; successes store into both caches
  at completion time (zero-TTL answers are uncacheable), timeouts and
  rcode failures store nothing;
* arrivals after ``run_duration`` never issue, and exchanges still in
  flight at ``run_duration`` count as unresolved — both exactly as the
  event loop's ``run(until=...)`` cutoff behaves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache import LookupState
from repro.experiments.resolution import QueryOutcome
from repro.live.reservoir import LatencyReservoir
from repro.scenarios.runner import NAME_TEMPLATE
from repro.scenarios.scenario import Scenario
from repro.transports.registry import registry

from .arrivals import (
    SamplePlan,
    defer_to_wake,
    flash_crowd_warp,
    generate_arrivals,
    plan_sample,
    sampled_workload,
)
from .cache import FleetCacheModel
from .options import FleetOptions
from .service import Calibration, ServiceModel, calibrate


@dataclass
class FleetResult:
    """One fleet run's raw output (unscaled sample + the scaling plan)."""

    scenario: Scenario
    options: FleetOptions
    plan: SamplePlan
    calibration: Calibration
    #: Sampled-query outcomes (the exact-sim vocabulary), unscaled.
    outcomes: List[QueryOutcome]
    #: Bounded success-latency sample (seconds).
    reservoir: LatencyReservoir
    #: Per-location cache counters of the sample, fleet-scaled.
    cache_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    active_clients: int = 0


def run_fleet(
    scenario: Scenario, options: Optional[FleetOptions] = None
) -> FleetResult:
    """Execute *scenario* on the fleet substrate."""
    options = options if options is not None else FleetOptions()
    profile = registry.get(scenario.transport)
    calibration = calibrate(scenario, options)

    workload = scenario.workload
    plan = plan_sample(
        scenario.topology.clients,
        workload.num_queries,
        workload.query_rate,
        options.sample_cap,
    )

    # One seeded stream for the workload draws, consumed in the exact
    # runner's order (zone TTLs, then arrivals, then per-query draws);
    # bulk draws advance it exactly as per-query draws would.
    rng = random.Random(scenario.seed)
    ttls = [
        float(rng.randint(*workload.ttl)) for _ in range(workload.num_names)
    ]
    arrivals = generate_arrivals(workload, plan, rng)
    names = sampled_workload(workload, plan).draw_name_indices(
        rng, plan.queries
    )

    if options.flash_crowd > 1.0:
        duration = plan.queries / plan.rate
        arrivals = flash_crowd_warp(
            arrivals, options.flash_crowd, workload.start, duration
        )
    # The exact runner assigns query i to client i % clients; the fleet
    # does the same over the sampled sub-fleet.
    clients = [index % plan.clients for index in range(plan.queries)]
    issue_times = defer_to_wake(
        arrivals, clients, options.duty_cycle, options.duty_period
    )
    if options.duty_cycle < 1.0:
        # Deferral can reorder queries; caches must see issue order.
        order = sorted(range(plan.queries), key=issue_times.__getitem__)
    else:
        order = list(range(plan.queries))

    # Model-internal draws (churn survival) come from a separate seeded
    # stream so fleet-only dimensions never shift the workload streams.
    model_rng = random.Random(f"fleet-model-{scenario.seed}")
    cache_model = FleetCacheModel(
        scenario.caching_spec,
        coap_based=profile.coap_based,
        # Plain OSCORE protects requests end-to-end; the outer message
        # the CoAP layer sees is not cacheable, so the per-node stack
        # never consults its client CoAP cache (counters stay zero).
        coap_active=scenario.transport != "oscore",
        churn=options.churn,
        model_rng=model_rng,
    )
    service = ServiceModel(calibration)
    reservoir = LatencyReservoir(seed=scenario.seed)
    outcomes: List[QueryOutcome] = []
    wired_clients = set()
    run_duration = scenario.run_duration

    for index in order:
        issued_at = issue_times[index]
        if issued_at > run_duration:
            continue
        client = clients[index]
        name_index = names[index]
        rtype = workload.draw_rtype(rng)
        outcome = QueryOutcome(
            name=NAME_TEMPLATE.format(index=name_index),
            client=f"fleet{client}",
            issued_at=issued_at,
            resolution_time=None,
            rtype=rtype,
        )
        outcomes.append(outcome)
        cache_model.touch(client, issued_at)
        key = (name_index, rtype)

        dns = cache_model.dns(client)
        if dns is not None:
            entry, state = dns.lookup(key, issued_at)
            if state is LookupState.HIT:
                outcome.resolution_time = 0.0
                reservoir.add(0.0)
                continue

        coap = cache_model.coap(client)
        stale = False
        if coap is not None:
            entry, state = coap.lookup(key, issued_at)
            if state is LookupState.HIT:
                outcome.resolution_time = 0.0
                reservoir.add(0.0)
                if dns is not None:
                    remaining = entry.expires_at - issued_at
                    if remaining > 0:
                        # The replayed response carries aged TTLs, so
                        # the DNS entry expires with the CoAP one.
                        dns.store(key, True, lifetime=remaining,
                                  now=issued_at)
                continue
            stale = state is LookupState.STALE

        first_exchange = client not in wired_clients
        wired_clients.add(client)
        kind, latency = service.draw(first_exchange)
        if kind != ServiceModel.OK:
            outcome.error = (
                "TimeoutError" if kind == ServiceModel.TIMEOUT
                else "RcodeError"
            )
            continue
        done = issued_at + latency
        if done > run_duration:
            # Still in flight when the run ends: unresolved, no error —
            # the same fate the event-loop cutoff hands such queries.
            continue
        outcome.resolution_time = latency
        reservoir.add(latency)
        ttl = ttls[name_index]
        if coap is not None and ttl > 0:
            if stale:
                coap.refresh(key, done, ttl)
            else:
                coap.store(key, True, lifetime=ttl, now=done)
        if dns is not None and ttl > 0:
            dns.store(key, True, lifetime=ttl, now=done)

    return FleetResult(
        scenario=scenario,
        options=options,
        plan=plan,
        calibration=calibration,
        outcomes=outcomes,
        reservoir=reservoir,
        cache_stats=cache_model.scaled_stats(plan.query_scale),
        active_clients=cache_model.active_clients,
    )
