"""Batched arrival generation for the fleet engine.

The engine never schedules per-client events: one bulk call produces
the whole run's arrival instants (reusing the exact simulator's
:mod:`repro.sim.workload` primitives, so a fleet run's arrival stream
is drawn from the same processes — and, for equal parameters, the same
RNG stream — as a :class:`~repro.scenarios.ScenarioRunner` run), and
the fleet-only dimensions are applied as array transforms:

* **client sampling** (:func:`plan_sample`) — above the sample cap a
  representative sub-fleet is simulated and counters scale up;
* **flash crowds** (:func:`flash_crowd_warp`) — a time warp through
  the inverse cumulative arrival intensity;
* **duty cycling** (:func:`defer_to_wake`) — arrivals landing in a
  client's sleep window defer to its next wake-up.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import List

from repro.scenarios.scenario import WorkloadSpec

#: Golden-ratio conjugate: the classic low-discrepancy increment used
#: to spread per-client duty-cycle phases over the period.
_PHI = 0.6180339887498949


@dataclass(frozen=True)
class SamplePlan:
    """How a fleet run maps onto the exactly-simulated sample.

    ``clients`` of the fleet's ``fleet_clients`` are simulated,
    receiving ``queries`` of the fleet's ``fleet_queries``;
    ``query_scale`` (= fleet_queries / queries, except when the sample
    had to be time-truncated) and ``client_scale`` blow sampled
    counters back up to fleet totals.
    """

    fleet_clients: int
    fleet_queries: int
    clients: int
    queries: int
    rate: float

    @property
    def query_scale(self) -> float:
        return self.fleet_queries / self.queries

    @property
    def client_scale(self) -> float:
        return self.fleet_clients / self.clients

    @property
    def exact(self) -> bool:
        """True when the whole fleet is simulated (no scaling)."""
        return self.queries == self.fleet_queries


def plan_sample(
    clients: int, queries: int, rate: float, cap: int
) -> SamplePlan:
    """Pick the sub-fleet a run simulates exactly.

    At or below *cap* queries the whole fleet runs exactly. Above it, a
    sub-fleet of ``ceil(clients × cap / queries)`` clients is simulated
    at the proportional aggregate rate — each sampled client sees the
    same per-client query rate as the full fleet, so cache occupancy
    and TTL interplay are preserved; only the population is thinned.
    When the fleet is too small for thinning to reach the cap (few
    clients, very many queries) the sample is additionally truncated in
    time, which per-client steady-state metrics tolerate.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if queries < 1:
        raise ValueError("queries must be >= 1")
    if queries <= cap:
        return SamplePlan(clients, queries, clients, queries, rate)
    sampled_clients = min(clients, max(1, math.ceil(clients * cap / queries)))
    sampled_queries = min(
        cap, max(1, round(queries * sampled_clients / clients))
    )
    return SamplePlan(
        clients,
        queries,
        sampled_clients,
        sampled_queries,
        rate * sampled_clients / clients,
    )


def sampled_workload(workload: WorkloadSpec, plan: SamplePlan) -> WorkloadSpec:
    """The workload the sampled sub-fleet actually runs."""
    if plan.exact:
        return workload
    return replace(
        workload, num_queries=plan.queries, query_rate=plan.rate
    )


def generate_arrivals(
    workload: WorkloadSpec, plan: SamplePlan, rng: random.Random
) -> List[float]:
    """The sampled run's arrival instants, via the shared primitives."""
    return sampled_workload(workload, plan).arrival_times(rng)


def flash_crowd_warp(
    arrivals: List[float],
    multiplier: float,
    start: float,
    duration: float,
) -> List[float]:
    """Compress *arrivals* so the middle third runs *multiplier*× hot.

    The base stream is treated as positions on the cumulative-intensity
    axis of a piecewise-constant rate profile (slope 1 outside the
    crowd window, *multiplier* inside) and mapped through the inverse:
    every arrival keeps its rank and the total count is unchanged, but
    instants inside the window pack ``multiplier``× tighter — the
    flash crowd — and the tail shifts earlier accordingly.
    """
    if multiplier <= 1.0 or not arrivals:
        return arrivals
    window_start = start + duration / 3.0
    window_mass = (duration / 6.0) * multiplier
    window_end_mass = window_start + window_mass

    warped = []
    for t in arrivals:
        if t <= window_start:
            warped.append(t)
        elif t <= window_end_mass:
            warped.append(window_start + (t - window_start) / multiplier)
        else:
            warped.append(t - window_mass + duration / 6.0)
    return warped


def wake_time(
    client: int, t: float, duty_cycle: float, period: float
) -> float:
    """When *client* can issue a query that arises at time *t*.

    Client *client* is awake during the first ``duty_cycle × period``
    seconds of its own phase-shifted period (phases follow the
    golden-ratio sequence, so any subset of clients spreads evenly over
    the period). If *t* falls in the client's sleep window the query
    defers to the next wake-up; otherwise it issues at *t*.
    """
    if duty_cycle >= 1.0:
        return t
    phase = (client * _PHI) % 1.0 * period
    offset = (t - phase) % period
    awake = duty_cycle * period
    if offset < awake:
        return t
    return t + (period - offset)


def defer_to_wake(
    arrivals: List[float],
    clients: List[int],
    duty_cycle: float,
    period: float,
) -> List[float]:
    """Apply :func:`wake_time` across the run (bulk form)."""
    if duty_cycle >= 1.0:
        return arrivals
    return [
        wake_time(client, t, duty_cycle, period)
        for client, t in zip(clients, arrivals)
    ]
