"""Registered benchmarks for the reproduction's hot paths.

Macro benchmarks drive whole scenario runs (the full sweep, serial and
process-parallel, and a single resolution experiment); micro benchmarks
isolate the codecs and primitives those runs spend their time in (CoAP
and DNS encode/decode, AES-CCM seal/open, simulator event churn).

Every benchmark accepts ``quick`` (a reduced-work variant for CI smoke
runs) and returns the number of work units performed. The codec
benchmarks run the golden-vector guard as setup: their fast paths must
produce byte-identical wire output before any timing counts.
"""

from __future__ import annotations

from . import golden
from .harness import register

# -- macro: scenario sweeps ------------------------------------------------

#: The 8-cell reference grid: 2 transports × 2 topologies × 2 losses.
SWEEP_GRID = dict(
    transports=("coap", "oscore"),
    topologies=("figure2", "one-hop"),
    losses=(0.05, 0.25),
)


def _sweep_base(quick: bool):
    from repro.scenarios import Scenario, WorkloadSpec

    return Scenario(
        workload=WorkloadSpec(num_queries=10 if quick else 30),
        run_duration=300.0,
    )


def _run_sweep(quick: bool, workers: int) -> int:
    from repro.scenarios import ScenarioRunner

    result = ScenarioRunner().sweep(
        base=_sweep_base(quick), workers=workers, **SWEEP_GRID
    )
    return len(result)


@register(
    "sweep_serial",
    "8-cell sweep (coap+oscore × figure2+one-hop × 0.05/0.25), serial",
    unit="cell",
)
def sweep_serial(quick: bool) -> int:
    return _run_sweep(quick, workers=1)


@register(
    "sweep_process4",
    "the same 8-cell sweep fanned out over 4 worker processes",
    unit="cell",
)
def sweep_process4(quick: bool) -> int:
    return _run_sweep(quick, workers=4)


@register(
    "single_resolution",
    "one Figure 7-style resolution experiment (coap, figure2 topology)",
    unit="query",
)
def single_resolution(quick: bool) -> int:
    from repro.scenarios import Scenario, ScenarioRunner, WorkloadSpec

    queries = 15 if quick else 50
    scenario = Scenario(workload=WorkloadSpec(num_queries=queries))
    result = ScenarioRunner().run(scenario, frame_capture="counts")
    return len(result.outcomes)


# -- micro: codecs ---------------------------------------------------------


def _codec_messages(codec: str):
    return [v.build() for v in golden.vectors() if v.codec == codec]


def _codec_wires(codec: str):
    return [v.build().encode() for v in golden.vectors() if v.codec == codec]


@register(
    "coap_encode",
    "CoAP message encode over the golden vector set",
    unit="message",
    setup=golden.verify,
)
def coap_encode(quick: bool) -> int:
    messages = _codec_messages("coap")
    rounds = 300 if quick else 1500
    for _ in range(rounds):
        for message in messages:
            message.encode()
    return rounds * len(messages)


@register(
    "coap_decode",
    "CoAP message decode over the golden vector set",
    unit="message",
    setup=golden.verify,
)
def coap_decode(quick: bool) -> int:
    from repro.coap.message import CoapMessage

    wires = _codec_wires("coap")
    rounds = 300 if quick else 1500
    for _ in range(rounds):
        for wire in wires:
            CoapMessage.decode(wire)
    return rounds * len(wires)


@register(
    "dns_encode",
    "DNS message encode (with compression) over the golden vector set",
    unit="message",
    setup=golden.verify,
)
def dns_encode(quick: bool) -> int:
    messages = _codec_messages("dns")
    rounds = 300 if quick else 1500
    for _ in range(rounds):
        for message in messages:
            message.encode()
    return rounds * len(messages)


#: Wire-generation cache so the decode benchmarks time only decoding.
_DNS_WIRES: dict = {}


def _distinct_dns_wires(count: int):
    """*count* structurally similar but distinct response wires.

    Distinct inputs defeat the decode memo (its capacity is below
    *count*, so repeats stay cold), which makes this the cold-parser
    measurement; :func:`dns_decode_hot` measures the memoised repeat
    path. Generated once per process and reused across repeats.
    """
    wires = _DNS_WIRES.get(count)
    if wires is not None:
        return wires
    from repro.dns.enums import DNSClass, RecordType
    from repro.dns.message import Flags, Message, Question, ResourceRecord
    from repro.dns.rdata import AAAAData

    wires = []
    for index in range(count):
        name = f"name{index:05d}.example-iot.org"
        wires.append(
            Message(
                id=0,
                flags=Flags(qr=True),
                questions=(Question(name, RecordType.AAAA),),
                answers=(
                    ResourceRecord(
                        name, RecordType.AAAA, DNSClass.IN, 300,
                        AAAAData(f"2001:db8::{index:x}"),
                    ),
                ),
            ).encode()
        )
    _DNS_WIRES[count] = wires
    return wires


def _prepare_dns_decode() -> None:
    golden.verify()
    _distinct_dns_wires(4096)


@register(
    "dns_decode",
    "DNS message decode, distinct wires (cold parser path)",
    unit="message",
    setup=_prepare_dns_decode,
)
def dns_decode(quick: bool) -> int:
    from repro.dns.message import Message

    wires = _distinct_dns_wires(4096)
    for wire in wires:
        Message.decode(wire)
    return len(wires)


@register(
    "dns_decode_hot",
    "DNS message decode, repeated wires (memoised path)",
    unit="message",
    setup=golden.verify,
)
def dns_decode_hot(quick: bool) -> int:
    from repro.dns.message import Message

    wires = _codec_wires("dns")
    rounds = 300 if quick else 1500
    for _ in range(rounds):
        for wire in wires:
            Message.decode(wire)
    return rounds * len(wires)


# -- micro: cache ----------------------------------------------------------


@register(
    "cache_lookup",
    "KeyedCache lookup mix: 50% hits, 50% misses on a 512-entry LRU",
    unit="lookup",
)
def cache_lookup(quick: bool) -> int:
    from repro.cache import EvictionPolicy, KeyedCache

    cache = KeyedCache(512, policy=EvictionPolicy.LRU)
    for index in range(512):
        cache.store(("name%03d" % index, 28), index, lifetime=3600.0, now=0.0)
    present = [("name%03d" % index, 28) for index in range(512)]
    absent = [("miss%03d" % index, 28) for index in range(512)]
    rounds = 40 if quick else 200
    lookup = cache.lookup
    for _ in range(rounds):
        for hit_key, miss_key in zip(present, absent):
            lookup(hit_key, 1.0)
            lookup(miss_key, 1.0)
    return rounds * 1024


# -- micro: crypto ---------------------------------------------------------

_KEY = bytes(range(16))
_NONCE = bytes(range(13))
_AAD = b"\x83\x00\x41\x01\x40"
#: A DNS-response-sized plaintext (the OSCORE payloads of Figure 6).
_PLAINTEXT = bytes(range(256)) * 1


def _seal_once() -> bytes:
    from repro.crypto import AES_CCM_16_64_128

    # Constructing per call mirrors OSCORE, which instantiates the AEAD
    # for every protected message exchange.
    return AES_CCM_16_64_128(_KEY).encrypt(_NONCE, _PLAINTEXT[:120], _AAD)


@register(
    "aesccm_seal",
    "AES-CCM-16-64-128 seal of a 120-byte payload (fresh AEAD per op)",
    unit="seal",
)
def aesccm_seal(quick: bool) -> int:
    ops = 100 if quick else 500
    for _ in range(ops):
        _seal_once()
    return ops


@register(
    "aesccm_open",
    "AES-CCM-16-64-128 open+verify of a 120-byte payload",
    unit="open",
)
def aesccm_open(quick: bool) -> int:
    from repro.crypto import AES_CCM_16_64_128

    ciphertext = _seal_once()
    ops = 100 if quick else 500
    for _ in range(ops):
        AES_CCM_16_64_128(_KEY).decrypt(_NONCE, ciphertext, _AAD)
    return ops


# -- micro: observability --------------------------------------------------


@register(
    "metrics_overhead",
    "metrics hot path: one counter inc + one histogram observe per op",
    unit="op",
)
def metrics_overhead(quick: bool) -> int:
    """Cost of the repro.obs fast path an instrumented datagram pays.

    Hoists the bound children exactly as the load generator does, so
    what's timed is the per-event overhead observability adds to a hot
    loop: one counter increment plus one latency observation routed
    through the log-spaced histogram buckets.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.telemetry import LATENCY_SECONDS, QUERIES_TOTAL

    registry = MetricsRegistry()
    count = registry.counter(QUERIES_TOTAL, "queries issued").labels()
    observe = registry.histogram(
        LATENCY_SECONDS, "query latency"
    ).labels().observe
    ops = 20_000 if quick else 200_000
    # A fixed latency ramp spanning several buckets, so bisection depth
    # varies like real traffic rather than hitting one bucket forever.
    samples = [1e-4 * (1 + (i % 97)) for i in range(512)]
    n = len(samples)
    for i in range(ops):
        count.inc()
        observe(samples[i % n])
    assert count.value == ops
    return ops


# -- macro: live serving runtime -------------------------------------------


@register(
    "live_loopback",
    "live DoC resolutions over real loopback UDP sockets (coap)",
    unit="query",
)
def live_loopback(quick: bool) -> int:
    import asyncio

    from repro.live import DocLiveServer, LiveResolver

    queries = 50 if quick else 300

    async def run() -> int:
        server = DocLiveServer(transport="coap", port=0, num_names=16)
        async with server:
            resolver = LiveResolver(server.endpoint, transport="coap")
            async with resolver:
                done = 0
                for index in range(queries):
                    await resolver.resolve(
                        server.names[index % len(server.names)], timeout=10.0
                    )
                    done += 1
                return done

    return asyncio.run(run())


@register(
    "live_loopback_sharded",
    "sharded serve+loadtest over loopback UDP: qps at 1 and 2 workers",
    unit="query",
)
def live_loopback_sharded(quick: bool) -> "tuple":
    """Closed-loop aggregate throughput of the SO_REUSEPORT worker pool.

    Runs the same offered load against a 1-worker and a 2-worker pool
    (distributed load generation matching the serve worker count) and
    attaches the qps-vs-workers curve plus the host's core count as
    result metadata — the scaling win only materialises with cores to
    spread across, so the curve is only meaningful next to
    ``cpu_count``. The unit count (total completed queries) keeps the
    per-unit gate comparison meaningful.
    """
    import os

    from repro.live import ServePool, run_distributed_load

    duration = 0.5 if quick else 1.5
    total = 0
    curve = {}
    for workers in (1, 2):
        pool = ServePool(
            workers=workers, transport="udp", port=0, num_names=16
        )
        endpoint = pool.start()
        try:
            report = run_distributed_load(
                endpoint,
                transport="udp",
                mode="closed",
                concurrency=4 * workers,
                duration=duration,
                workers=workers,
                timeout=10.0,
            )
        finally:
            pool.drain()
        total += report["succeeded"]
        curve[str(workers)] = report["achieved_qps"]
    return total, {"qps_by_workers": curve, "cpu_count": os.cpu_count()}


# -- macro: fleet substrate ------------------------------------------------


@register(
    "fleet_scale",
    "fleet substrate end-to-end: clients/sec at 10k and 1M clients",
    unit="client",
)
def fleet_scale(quick: bool) -> "tuple":
    """Aggregate-engine throughput across two fleet sizes.

    Runs the full ``RunSpec -> run() -> Report`` path on the fleet
    substrate at 10k and 1M clients (queries scaled with the fleet, so
    both runs sample at ``fleet-sample-cap`` and the 1M run exercises
    the scaled-counter path) and attaches the clients/sec curve as
    metadata. Calibration is memoised per probe identity — both scales
    share one probe, paid in warmup — so what's timed is the engine
    walk plus report assembly, which is the fleet's hot path.
    """
    import time as _time

    from repro.api import RunSpec, run

    cap = 8192 if quick else 65536
    total = 0
    curve = {}
    for clients in (10_000, 1_000_000):
        spec = RunSpec.from_spec(
            f"one-hop,transport=coap,clients={clients},queries={clients},"
            f"rate={clients // 10},names=64,cache=client-dns+client-coap,"
            f"substrate=fleet,fleet-sample-cap={cap}"
        )
        start = _time.perf_counter()
        report = run(spec)
        elapsed = _time.perf_counter() - start
        assert report.metrics["queries.issued"] > 0
        total += clients
        curve[str(clients)] = round(clients / elapsed, 1)
    return total, {"clients_per_s_by_scale": curve}


# -- micro: simulator ------------------------------------------------------


@register(
    "sim_event_churn",
    "simulator schedule/cancel/fire churn (half the events cancelled)",
    unit="event",
)
def sim_event_churn(quick: bool) -> int:
    from repro.sim import Simulator

    total = 4_000 if quick else 20_000
    sim = Simulator(seed=7)
    fired = 0

    def tick() -> None:
        nonlocal fired
        fired += 1

    # Interleave survivors with cancelled events so the lazy heap
    # compaction path is part of what gets measured.
    events = []
    for index in range(total):
        events.append(sim.schedule(index * 1e-4, tick))
    for index in range(0, total, 2):
        events[index].cancel()
    sim.run()
    return fired + total // 2
