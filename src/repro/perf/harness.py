"""The benchmark harness: registry, measurement, JSON reports.

Each :class:`Benchmark` wraps a callable that performs a bounded amount
of work and returns how many *units* of it were done (messages encoded,
queries resolved, simulator events processed, sweep cells run). The
harness times it over ``warmup + repeats`` runs, keeps the per-repeat
wall-clock times, the unit count, and the process's peak RSS, and
serialises everything to a ``BENCH_*.json`` report that later sessions
(or CI) can compare against with :func:`compare_reports`.

Design notes
------------
* **Wall-clock, not CPU time** — the sweep benchmarks measure process
  fan-out, which only wall-clock can see.
* **best-of-N as the headline** — the minimum over repeats is the
  least noisy estimator on a shared machine; the mean and the raw
  times are kept alongside it.
* **Peak RSS** is read from ``getrusage`` after each run. The kernel
  reports a process-lifetime high-water mark, so per-benchmark values
  are monotone across a session — comparable within one report, and an
  upper bound rather than an isolated per-run figure.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None


class BenchmarkError(ValueError):
    """Unknown benchmark name or invalid harness configuration."""


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (0 where unavailable)."""
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover
        peak //= 1024
    return int(peak)


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark.

    ``fn`` is called as ``fn(quick)`` and must return the number of
    work units it performed (its *quick* variant may do less work).
    ``setup`` runs once before any timed run — uncounted — and is
    where correctness guards live (e.g. the codec golden-vector check:
    a benchmark of a rewritten fast path must prove byte-identical
    output before its timings mean anything).
    """

    name: str
    description: str
    unit: str
    fn: Callable[[bool], int]
    setup: Optional[Callable[[], None]] = None


@dataclass
class BenchResult:
    """Measurements of one benchmark."""

    name: str
    description: str
    unit: str
    repeats: int
    warmup: int
    times_s: List[float] = field(default_factory=list)
    units: int = 0
    peak_rss_kb: int = 0
    error: Optional[str] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def best_s(self) -> float:
        return min(self.times_s) if self.times_s else float("nan")

    @property
    def mean_s(self) -> float:
        if not self.times_s:
            return float("nan")
        return sum(self.times_s) / len(self.times_s)

    @property
    def per_unit_us(self) -> float:
        """Best time per work unit, in microseconds."""
        if not self.times_s or not self.units:
            return float("nan")
        return self.best_s / self.units * 1e6

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "unit": self.unit,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "times_s": [round(t, 6) for t in self.times_s],
            "best_s": round(self.best_s, 6) if self.times_s else None,
            "mean_s": round(self.mean_s, 6) if self.times_s else None,
            "units": self.units,
            "per_unit_us": (
                round(self.per_unit_us, 3) if self.times_s and self.units else None
            ),
            "peak_rss_kb": self.peak_rss_kb,
            "error": self.error,
            "metadata": self.metadata,
        }


#: Registered benchmarks in registration order (which is run order).
_REGISTRY: Dict[str, Benchmark] = {}


def register(
    name: str,
    description: str,
    unit: str = "ops",
    setup: Optional[Callable[[], None]] = None,
) -> Callable[[Callable[[bool], int]], Callable[[bool], int]]:
    """Decorator registering ``fn(quick) -> units`` as a benchmark."""

    def decorate(fn: Callable[[bool], int]) -> Callable[[bool], int]:
        if name in _REGISTRY:
            raise BenchmarkError(f"benchmark {name!r} already registered")
        _REGISTRY[name] = Benchmark(name, description, unit, fn, setup)
        return fn

    return decorate


def _ensure_loaded() -> None:
    # The benchmark definitions live in their own module so that
    # importing the harness (e.g. from tests) stays cheap.
    from . import benchmarks  # noqa: F401


def benchmark_names() -> List[str]:
    _ensure_loaded()
    return list(_REGISTRY)


def get_benchmark(name: str) -> Benchmark:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown benchmark {name!r} "
            f"(known: {', '.join(_REGISTRY) or 'none'})"
        ) from None


def run_one(
    bench: Benchmark,
    repeats: int = 5,
    warmup: int = 1,
    quick: bool = False,
) -> BenchResult:
    """Measure one benchmark; failures are captured, not raised."""
    if repeats < 1:
        raise BenchmarkError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise BenchmarkError(f"warmup must be >= 0, got {warmup}")
    result = BenchResult(
        name=bench.name,
        description=bench.description,
        unit=bench.unit,
        repeats=repeats,
        warmup=warmup,
    )
    try:
        if bench.setup is not None:
            bench.setup()
        for _ in range(warmup):
            bench.fn(quick)
        for _ in range(repeats):
            start = time.perf_counter()
            units = bench.fn(quick)
            elapsed = time.perf_counter() - start
            result.times_s.append(elapsed)
            # A benchmark may return ``(units, metadata)`` to attach
            # facts about the measurement itself (e.g. the qps-vs-
            # workers scaling curve and host core count of the sharded
            # live benchmark) alongside the unit count.
            if isinstance(units, tuple):
                units, metadata = units
                result.metadata.update(metadata)
            result.units = int(units)
    except Exception as exc:  # noqa: BLE001 - reported per benchmark
        result.error = f"{type(exc).__name__}: {exc}"
    result.peak_rss_kb = _peak_rss_kb()
    return result


def run_benchmarks(
    names: Optional[List[str]] = None,
    repeats: int = 5,
    warmup: int = 1,
    quick: bool = False,
) -> List[BenchResult]:
    """Run the selected (default: all) benchmarks in registry order."""
    _ensure_loaded()
    if names is None:
        selected = list(_REGISTRY.values())
    else:
        selected = [get_benchmark(name) for name in names]
    return [run_one(bench, repeats, warmup, quick) for bench in selected]


# -- reports ---------------------------------------------------------------


def build_report(
    results: List[BenchResult],
    quick: bool,
    baseline: Optional[dict] = None,
) -> dict:
    """The JSON document a harness run emits.

    *baseline* is a previously-written report; when given, each result
    gains the baseline's timing plus a measured speedup factor
    (``baseline best / current best``) under ``comparison``.

    The report carries the toolkit-wide ``report_version`` +
    provenance stamp from :mod:`repro.api.report` (the same one the
    unified Reports and the loadgen report use), alongside its own
    ``schema`` marker and the legacy flat ``python``/``platform`` keys.
    """
    from repro.api.report import REPORT_VERSION, provenance

    report = {
        "schema": "repro.perf/1",
        "report_version": REPORT_VERSION,
        "provenance": provenance(),
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "results": [r.to_dict() for r in results],
    }
    if baseline is not None:
        report["comparison"] = compare_reports(baseline, results)
    return report


def compare_reports(baseline: dict, results: List[BenchResult]) -> dict:
    """Measured speedups of *results* over a *baseline* report.

    Returns ``{name: {baseline_best_s, current_best_s, speedup,
    baseline_per_unit_us, current_per_unit_us}}`` for every benchmark
    present in both; benchmarks that errored on either side are
    skipped.
    """
    by_name = {
        entry["name"]: entry
        for entry in baseline.get("results", [])
        if entry.get("best_s") and not entry.get("error")
    }
    comparison: Dict[str, dict] = {}
    for result in results:
        entry = by_name.get(result.name)
        if entry is None or result.error or not result.times_s:
            continue
        baseline_per = entry.get("per_unit_us")
        current_per = round(result.per_unit_us, 3) if result.units else None
        # Per-unit is the comparison that survives a benchmark changing
        # its work volume between recordings; total wall-clock is the
        # fallback when unit counts are unavailable.
        if baseline_per and current_per:
            speedup = round(baseline_per / current_per, 3)
        else:
            speedup = round(entry["best_s"] / result.best_s, 3)
        comparison[result.name] = {
            "baseline_best_s": entry["best_s"],
            "current_best_s": round(result.best_s, 6),
            "speedup": speedup,
            "baseline_per_unit_us": baseline_per,
            "current_per_unit_us": current_per,
        }
    return comparison


#: Per-benchmark gate thresholds looser than the CLI default. The codec
#: and cache micros are tight and repeatable; whole-scenario and
#: socket-bound benchmarks see scheduler and loopback noise, and the
#: AEAD ops are short enough that timer granularity shows, so they get
#: more headroom before the gate trips.
GATE_THRESHOLD_OVERRIDES: Dict[str, float] = {
    "sweep_serial": 0.40,
    "sweep_process4": 0.60,
    "single_resolution": 0.40,
    "live_loopback": 0.60,
    # Sharded serving forks worker processes per repeat: process spawn
    # and kernel flow-hash placement add variance on top of loopback
    # noise, so the gate is the loosest of the set.
    "live_loopback_sharded": 0.75,
    "aesccm_seal": 0.40,
    "aesccm_open": 0.40,
    # Whole-pipeline macro (spec parse, engine walk, report assembly):
    # same scheduler-noise class as the other scenario macros.
    "fleet_scale": 0.50,
}


def gate_regressions(
    comparison: dict,
    threshold: float,
    overrides: Optional[Dict[str, float]] = None,
) -> List[dict]:
    """Benchmarks whose per-unit time regressed past their allowance.

    *threshold* is the default allowed fractional slowdown (0.25 = up
    to 25% slower per unit than the baseline); *overrides* — default
    :data:`GATE_THRESHOLD_OVERRIDES` — loosens it for named noisy
    benchmarks. The measured slowdown is derived from the comparison's
    ``speedup`` (baseline per-unit / current per-unit), so it survives
    benchmarks changing their work volume between recordings. Returns
    one ``{name, allowed, speedup, regression}`` dict per offender;
    empty means the gate passes.
    """
    if threshold < 0:
        raise BenchmarkError(f"gate threshold must be >= 0, got {threshold}")
    if overrides is None:
        overrides = GATE_THRESHOLD_OVERRIDES
    failures: List[dict] = []
    for name, entry in comparison.items():
        speedup = entry.get("speedup")
        if not speedup or speedup <= 0:
            continue
        allowed = overrides.get(name, threshold)
        regression = 1.0 / speedup - 1.0
        if regression > allowed:
            failures.append(
                {
                    "name": name,
                    "allowed": round(allowed, 3),
                    "speedup": speedup,
                    "regression": round(regression, 3),
                }
            )
    return failures


def load_report(path: str) -> dict:
    """Read a previously written report (the single baseline loader)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_report(
    path: str,
    results: List[BenchResult],
    quick: bool = False,
    baseline_path: Optional[str] = None,
) -> dict:
    """Serialise a report (optionally comparing against a baseline)."""
    baseline = load_report(baseline_path) if baseline_path is not None else None
    report = build_report(results, quick, baseline)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return report
