"""``python -m repro.perf`` — run the benchmark harness.

Examples
--------
::

    python -m repro.perf --list
    python -m repro.perf --quick
    python -m repro.perf --json BENCH_PR3.json
    python -m repro.perf --only coap_encode,dns_encode --repeats 9
    python -m repro.perf --json BENCH_PR4.json --compare BENCH_PR3.json
    python -m repro.perf --quick --compare BENCH_PR6.json --gate 0.25

Exit status: 1 when any selected benchmark errors (the CI smoke job
keys off this), 2 on usage/configuration errors, 3 when ``--gate``
finds a per-unit regression beyond its threshold (the CI perf-gate
job keys off this).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .harness import (
    BenchmarkError,
    benchmark_names,
    build_report,
    gate_regressions,
    load_report,
    run_benchmarks,
    write_report,
)


def _format_row(entry: dict, comparison: Optional[dict]) -> str:
    name = entry["name"]
    if entry.get("error"):
        return f"{name:20s} ERROR {entry['error']}"
    row = (
        f"{name:20s} best {entry['best_s'] * 1000:9.2f} ms"
        f"  mean {entry['mean_s'] * 1000:9.2f} ms"
    )
    if entry.get("per_unit_us") is not None:
        row += f"  {entry['per_unit_us']:9.2f} us/{entry['unit']}"
    if comparison and name in comparison:
        row += f"  {comparison[name]['speedup']:5.2f}x vs baseline"
    return row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf",
        description="Run the repro runtime benchmarks",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced work per benchmark and fewer repeats (CI smoke)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="measured repeats per benchmark (default 5, quick 3)",
    )
    parser.add_argument(
        "--warmup", type=int, default=1,
        help="unmeasured warmup runs per benchmark (default 1)",
    )
    parser.add_argument(
        "--only", default=None, metavar="LIST",
        help="comma-separated benchmark names to run (default: all)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the JSON report to PATH (e.g. BENCH_PR3.json)",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="compare against a previously written JSON report",
    )
    parser.add_argument(
        "--gate", type=float, default=None, nargs="?", const=0.25,
        metavar="THRESHOLD",
        help="fail (exit 3) when any benchmark is more than THRESHOLD "
             "(fraction, default 0.25) slower per unit than the "
             "--compare baseline; noisy benchmarks have looser "
             "built-in thresholds",
    )
    parser.add_argument(
        "--list", action="store_true", help="list benchmarks and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in benchmark_names():
            print(name)
        return 0

    repeats = args.repeats
    if repeats is None:
        repeats = 3 if args.quick else 5
    names = args.only.split(",") if args.only else None

    try:
        results = run_benchmarks(
            names=names, repeats=repeats, warmup=args.warmup, quick=args.quick
        )
        if args.json:
            report = write_report(
                args.json, results, quick=args.quick,
                baseline_path=args.compare,
            )
        else:
            baseline = load_report(args.compare) if args.compare else None
            report = build_report(results, args.quick, baseline)
    except (BenchmarkError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    comparison = report.get("comparison")
    for entry in report["results"]:
        print(_format_row(entry, comparison))
    if args.json:
        print(f"report written to {args.json}")

    errored = [e["name"] for e in report["results"] if e.get("error")]
    if errored:
        print(f"FAILED benchmarks: {', '.join(errored)}", file=sys.stderr)
        return 1

    if args.gate is not None:
        if args.compare is None:
            print("error: --gate requires --compare", file=sys.stderr)
            return 2
        failures = gate_regressions(comparison or {}, args.gate)
        report["gate"] = {
            "threshold": args.gate,
            "passed": not failures,
            "failures": failures,
        }
        if args.json:
            # Re-dump so the artifact records the gate verdict too.
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=False)
                handle.write("\n")
        for failure in failures:
            print(
                f"GATE FAIL {failure['name']}: {failure['regression']:.1%} "
                f"slower per unit (allowed {failure['allowed']:.0%}, "
                f"speedup {failure['speedup']:.2f}x)",
                file=sys.stderr,
            )
        if failures:
            return 3
        compared = len(comparison or {})
        print(f"gate passed: {compared} benchmark(s) within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
