"""Runtime performance measurement (`repro.perf`).

The paper reproduction's benchmark *figures* (`benchmarks/`) check
numbers the paper reports; this package measures the reproduction
itself: how fast the hot paths run on the current machine. It provides

* :mod:`repro.perf.harness` — a micro/macro benchmark harness with
  warmup/repeat controls, wall-clock timing, work-unit counts, peak
  RSS, JSON emission, and baseline comparison;
* :mod:`repro.perf.benchmarks` — the registered benchmarks covering
  the hot paths (full scenario sweep, single resolution, CoAP and DNS
  codecs, AES-CCM seal/open, simulator event churn);
* :mod:`repro.perf.golden` — golden codec vectors asserting that
  encode/decode outputs stay byte-identical across optimisation work;
* ``python -m repro.perf`` — the command-line entry point
  (:mod:`repro.perf.__main__`), which records ``BENCH_*.json``
  trajectories.

Typical use::

    PYTHONPATH=src python -m repro.perf --quick --json bench.json
    PYTHONPATH=src python -m repro.perf --json BENCH_PR4.json \
        --compare BENCH_PR3.json
"""

from .harness import (
    Benchmark,
    BenchmarkError,
    BenchResult,
    benchmark_names,
    compare_reports,
    get_benchmark,
    register,
    run_benchmarks,
    write_report,
)

__all__ = [
    "Benchmark",
    "BenchmarkError",
    "BenchResult",
    "benchmark_names",
    "compare_reports",
    "get_benchmark",
    "register",
    "run_benchmarks",
    "write_report",
]
