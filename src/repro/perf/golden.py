"""Golden codec vectors: byte-identical wire formats, guaranteed.

The CoAP and DNS codecs are on the reproduction's hottest paths and
get rewritten for speed; these vectors pin their wire output down to
the byte. Each vector is a message builder plus the expected wire hex
captured from the original (pre-fast-path) codecs. :func:`verify`
asserts, for every vector, that

1. encoding the built message produces exactly the golden bytes, and
2. decoding those bytes and re-encoding reproduces them bit-for-bit
   (the round-trip property the caches and deterministic cache keys
   rely on).

The harness runs :func:`verify` as the *setup* step of every codec
benchmark — a fast path that changes any output byte fails before a
single timing is recorded. The same vectors are checked into
``tests/golden_codec_vectors.json`` and exercised by the unit suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple


class GoldenMismatch(AssertionError):
    """A codec produced bytes that differ from the golden vectors."""


@dataclass(frozen=True)
class GoldenVector:
    name: str
    codec: str  # "coap" | "dns"
    build: Callable[[], object]
    wire_hex: str


# -- builders --------------------------------------------------------------

_NAME = "name0000.example-iot.org"


def _dns_query():
    from repro.dns.enums import RecordType
    from repro.dns.message import Message, Question

    return Message(id=0, questions=(Question(_NAME, RecordType.AAAA),))


def _dns_response():
    from repro.dns.enums import DNSClass, RecordType
    from repro.dns.message import Flags, Message, Question, ResourceRecord
    from repro.dns.rdata import AAAAData, AData

    return Message(
        id=0,
        flags=Flags(qr=True, ra=True),
        questions=(Question(_NAME, RecordType.AAAA),),
        answers=(
            ResourceRecord(
                _NAME, RecordType.AAAA, DNSClass.IN, 300, AAAAData("2001:db8::1:1")
            ),
            ResourceRecord(
                _NAME, RecordType.A, DNSClass.IN, 300, AData("192.0.2.1")
            ),
        ),
    )


def _dns_referral():
    from repro.dns.enums import DNSClass, RecordType
    from repro.dns.message import Flags, Message, Question, ResourceRecord
    from repro.dns.rdata import AAAAData, NSData

    return Message(
        id=0,
        flags=Flags(qr=True, aa=True),
        questions=(Question("device.example-iot.org", RecordType.AAAA),),
        answers=(
            ResourceRecord(
                "device.example-iot.org", RecordType.AAAA, DNSClass.IN, 120,
                AAAAData("2001:db8::2:7"),
            ),
        ),
        authorities=(
            ResourceRecord(
                "example-iot.org", RecordType.NS, DNSClass.IN, 3600,
                NSData("ns1.example-iot.org"),
            ),
        ),
    )


def _coap_fetch_request():
    from repro.coap.codes import Code
    from repro.coap.message import CoapMessage, MessageType
    from repro.coap.options import ContentFormat, OptionNumber

    return (
        CoapMessage(
            mtype=MessageType.CON,
            code=Code.FETCH,
            mid=0x1234,
            token=b"\xca\xfe",
            payload=_dns_query().encode(),
        )
        .with_uri_path("/dns")
        .with_uint_option(OptionNumber.CONTENT_FORMAT, ContentFormat.DNS_MESSAGE)
        .with_uint_option(OptionNumber.ACCEPT, ContentFormat.DNS_MESSAGE)
    )


def _coap_content_response():
    from repro.coap.codes import Code
    from repro.coap.message import CoapMessage, MessageType
    from repro.coap.options import ContentFormat, OptionNumber

    return (
        CoapMessage(
            mtype=MessageType.ACK,
            code=Code.CONTENT,
            mid=0x1234,
            token=b"\xca\xfe",
            payload=_dns_response().encode(),
        )
        .with_option(OptionNumber.ETAG, b"\x01\x02\x03\x04")
        .with_uint_option(OptionNumber.CONTENT_FORMAT, ContentFormat.DNS_MESSAGE)
        .with_uint_option(OptionNumber.MAX_AGE, 300)
    )


def _coap_blockwise_get():
    from repro.coap.codes import Code
    from repro.coap.message import CoapMessage, MessageType
    from repro.coap.options import OptionNumber

    return (
        CoapMessage(
            mtype=MessageType.CON,
            code=Code.GET,
            mid=0xBEEF,
            token=b"\x42",
        )
        .with_uri_path("/dns/cached")
        .with_uint_option(OptionNumber.BLOCK2, 0x06)
        .with_option(OptionNumber.URI_QUERY, b"dns=AAAA")
    )


def _coap_empty_ack():
    from repro.coap.message import CoapMessage, MessageType
    from repro.coap.codes import Code

    return CoapMessage(mtype=MessageType.ACK, code=Code.EMPTY, mid=0x0001)


#: Expected wire bytes, captured from the seed codecs (PR 3).
_EXPECTED: List[Tuple[str, str, Callable[[], object], str]] = [
    (
        "dns_query_aaaa", "dns", _dns_query,
        "000001000001000000000000086e616d65303030300b6578616d706c652d696f"
        "74036f726700001c0001",
    ),
    (
        "dns_response_two_answers", "dns", _dns_response,
        "000081800001000200000000086e616d65303030300b6578616d706c652d696f"
        "74036f726700001c0001c00c001c00010000012c001020010db8000000000000"
        "000000010001c00c000100010000012c0004c0000201",
    ),
    (
        "dns_referral", "dns", _dns_referral,
        "000085000001000100010000066465766963650b6578616d706c652d696f7403"
        "6f726700001c0001c00c001c000100000078001020010db80000000000000000"
        "00020007c0130002000100000e100006036e7331c013",
    ),
    (
        "coap_fetch_request", "coap", _coap_fetch_request,
        "42051234cafeb3646e73120229520229ff000001000001000000000000086e61"
        "6d65303030300b6578616d706c652d696f74036f726700001c0001",
    ),
    (
        "coap_content_response", "coap", _coap_content_response,
        "62451234cafe440102030482022922012cff000081800001000200000000086e"
        "616d65303030300b6578616d706c652d696f74036f726700001c0001c00c001c"
        "00010000012c001020010db8000000000000000000010001c00c000100010000"
        "012c0004c0000201",
    ),
    (
        "coap_blockwise_get", "coap", _coap_blockwise_get,
        "4101beef42b3646e730663616368656448646e733d414141418106",
    ),
    ("coap_empty_ack", "coap", _coap_empty_ack, "60000001"),
]


def vectors() -> List[GoldenVector]:
    return [
        GoldenVector(name, codec, build, wire_hex)
        for name, codec, build, wire_hex in _EXPECTED
    ]


def _decode(codec: str, wire: bytes):
    if codec == "coap":
        from repro.coap.message import CoapMessage

        return CoapMessage.decode(wire)
    from repro.dns.message import Message

    return Message.decode(wire)


def verify() -> int:
    """Check every golden vector; returns how many were verified.

    Raises
    ------
    GoldenMismatch
        If any encode deviates from the golden bytes or any
        decode→encode round trip is not byte-identical.
    """
    checked = 0
    for vector in vectors():
        message = vector.build()
        encoded = message.encode()
        if vector.wire_hex is not None and encoded.hex() != vector.wire_hex:
            raise GoldenMismatch(
                f"golden vector {vector.name!r}: encode produced\n"
                f"  {encoded.hex()}\nexpected\n  {vector.wire_hex}"
            )
        reencoded = _decode(vector.codec, encoded).encode()
        if reencoded != encoded:
            raise GoldenMismatch(
                f"golden vector {vector.name!r}: decode→encode round trip "
                f"changed bytes\n  {encoded.hex()}\n  -> {reencoded.hex()}"
            )
        checked += 1
    return checked
