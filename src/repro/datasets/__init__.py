"""Synthetic DNS trace generation calibrated to Section 3.

The paper's empirical corpus (YourThings, IoTFinder, MonIoTr captures
and IXP sFlow samples) is not redistributable; these generators emit
synthetic name sets and query streams whose *statistics* match the
published Table 3 (name lengths), Table 4 (record types), and Figure 1
(length distributions), so the evaluation pipeline runs on data with
the same shape.
"""

from .generator import (
    DATASET_PROFILES,
    DatasetProfile,
    QueryRecord,
    generate_names,
    generate_queries,
)
from .stats import name_length_stats, record_type_shares

__all__ = [
    "DATASET_PROFILES",
    "DatasetProfile",
    "QueryRecord",
    "generate_names",
    "generate_queries",
    "name_length_stats",
    "record_type_shares",
]
