"""Synthetic IoT / IXP DNS datasets (Section 3).

Name lengths are drawn from a two-component mixture fitted to the
paper's Table 3 / Figure 1: a main log-normal-ish hump around the
cloud/CDN name lengths (median 23-25 chars) plus, for the mDNS-bearing
IoT datasets, a long tail of service-discovery names (reverse DNS,
UUID-labelled local devices) reaching the low 80s. Record types follow
the Table 4 shares.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.dns.enums import RecordType


@dataclass(frozen=True)
class DatasetProfile:
    """Length-mixture and record-type parameters for one data source."""

    name: str
    unique_names: int
    #: (mu, sigma) of the dominant log-normal length component.
    body_mu: float
    body_sigma: float
    #: Weight and (low, high) of the uniform long-name (mDNS) tail.
    tail_weight: float
    tail_range: Tuple[int, int]
    min_length: int
    max_length: int
    #: Record-type shares (Table 4), must sum to ≈ 1.
    record_shares: Dict[int, float]


_IOT_WITH_MDNS_SHARES = {
    int(RecordType.A): 0.536,
    int(RecordType.AAAA): 0.164,
    int(RecordType.ANY): 0.082,
    int(RecordType.PTR): 0.196,
    int(RecordType.SRV): 0.010,
    int(RecordType.TXT): 0.012,
}

_IOT_WITHOUT_MDNS_SHARES = {
    int(RecordType.A): 0.758,
    int(RecordType.AAAA): 0.235,
    int(RecordType.PTR): 0.003,
    int(RecordType.TXT): 0.001,
    int(RecordType.SOA): 0.003,   # "Other"
}

_IXP_SHARES = {
    int(RecordType.A): 0.645,
    int(RecordType.AAAA): 0.176,
    int(RecordType.ANY): 0.017,
    int(RecordType.HTTPS): 0.091,
    int(RecordType.NS): 0.007,
    int(RecordType.PTR): 0.018,
    int(RecordType.SRV): 0.004,
    int(RecordType.TXT): 0.007,
    int(RecordType.SOA): 0.035,   # "Other"
}

#: Profiles calibrated to Table 3 (μ/σ/quartiles per data source).
DATASET_PROFILES: Dict[str, DatasetProfile] = {
    "yourthings": DatasetProfile(
        "YourThings", 1293, body_mu=3.16, body_sigma=0.33,
        tail_weight=0.04, tail_range=(45, 83), min_length=2, max_length=83,
        record_shares=_IOT_WITH_MDNS_SHARES,
    ),
    "iotfinder": DatasetProfile(
        "IoTFinder", 1097, body_mu=3.22, body_sigma=0.34,
        tail_weight=0.05, tail_range=(45, 82), min_length=7, max_length=82,
        record_shares=_IOT_WITH_MDNS_SHARES,
    ),
    "moniotr": DatasetProfile(
        "MonIoTr", 695, body_mu=3.16, body_sigma=0.38,
        tail_weight=0.08, tail_range=(45, 83), min_length=9, max_length=83,
        record_shares=_IOT_WITH_MDNS_SHARES,
    ),
    "ixp": DatasetProfile(
        "IXP", 5000, body_mu=3.20, body_sigma=0.40,
        tail_weight=0.01, tail_range=(45, 68), min_length=1, max_length=68,
        record_shares=_IXP_SHARES,
    ),
}

_LABEL_ALPHABET = string.ascii_lowercase + string.digits
_COMMON_TLDS = ("com", "net", "org", "io")
_CLOUD_INFIXES = ("amazonaws", "akamaiedge", "cloudfront", "azurewebsites")


def _sample_length(profile: DatasetProfile, rng: random.Random) -> int:
    if rng.random() < profile.tail_weight:
        length = rng.randint(*profile.tail_range)
    else:
        length = round(rng.lognormvariate(profile.body_mu, profile.body_sigma))
    return max(profile.min_length, min(profile.max_length, length))


def _name_of_length(length: int, rng: random.Random) -> str:
    """A plausible domain name of exactly *length* characters."""
    if length <= 4:
        return "".join(rng.choice(_LABEL_ALPHABET) for _ in range(length))
    tld = rng.choice(_COMMON_TLDS)
    remaining = length - len(tld) - 1  # minus the final dot separator
    labels: List[str] = []
    # Long names get a cloud-style infix label when it fits.
    if remaining > 30 and rng.random() < 0.5:
        infix = rng.choice(_CLOUD_INFIXES)
        if remaining - len(infix) - 1 >= 2:
            labels.append(infix)
            remaining -= len(infix) + 1
    while remaining > 0:
        chunk = min(remaining, rng.randint(3, 14))
        if remaining - chunk == 1:  # avoid a dangling 0-length label
            chunk += 1
            chunk = min(chunk, remaining)
        labels.append(
            "".join(rng.choice(_LABEL_ALPHABET) for _ in range(chunk))
        )
        remaining -= chunk + 1
    rng.shuffle(labels)
    return ".".join(labels + [tld])


def generate_names(
    profile: DatasetProfile, rng: random.Random, count: int | None = None
) -> List[str]:
    """*count* unique names drawn from *profile* (default: its size)."""
    count = count if count is not None else profile.unique_names
    names: List[str] = []
    seen = set()
    while len(names) < count:
        name = _name_of_length(_sample_length(profile, rng), rng)
        if name in seen:
            continue
        seen.add(name)
        names.append(name)
    return names


@dataclass(frozen=True)
class QueryRecord:
    """One synthetic captured query."""

    name: str
    rtype: int
    is_mdns: bool


def generate_queries(
    profile: DatasetProfile,
    rng: random.Random,
    count: int,
    names: Sequence[str] | None = None,
) -> List[QueryRecord]:
    """*count* queries over the profile's names and record-type mix."""
    if names is None:
        names = generate_names(profile, rng)
    types, weights = zip(*profile.record_shares.items())
    mdns_types = {int(RecordType.PTR), int(RecordType.SRV), int(RecordType.ANY)}
    queries = []
    for _ in range(count):
        rtype = rng.choices(types, weights=weights)[0]
        queries.append(
            QueryRecord(
                name=rng.choice(names),
                rtype=rtype,
                is_mdns=rtype in mdns_types and profile.name != "IXP",
            )
        )
    return queries
