"""Statistics over generated datasets (the Table 3 / Table 4 pipeline)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.experiments.metrics import summary_stats

from .generator import QueryRecord


def name_length_stats(names: Sequence[str]) -> Dict[str, float]:
    """Table 3 row for a set of names: length statistics in characters."""
    return summary_stats([float(len(name)) for name in names])


def record_type_shares(queries: Iterable[QueryRecord]) -> Dict[int, float]:
    """Table 4 row: fraction of queries per record type."""
    counts: Dict[int, int] = {}
    total = 0
    for query in queries:
        counts[query.rtype] = counts.get(query.rtype, 0) + 1
        total += 1
    if total == 0:
        raise ValueError("no queries")
    return {rtype: count / total for rtype, count in counts.items()}


def length_histogram(
    names: Sequence[str], bin_width: int = 1, max_length: int = 90
) -> List[float]:
    """Normalised histogram of name lengths (the Figure 1 densities)."""
    bins = [0] * (max_length // bin_width + 1)
    for name in names:
        index = min(len(name) // bin_width, len(bins) - 1)
        bins[index] += 1
    total = len(names)
    return [count / total for count in bins]
