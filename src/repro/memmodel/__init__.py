"""Build-size model for constrained firmware images (Fig. 5 / Fig. 8).

The paper measures ``.text``/``.data`` (ROM) and ``.data``/``.bss``
(RAM) of RIOT firmware built with GCC for a Cortex-M3. We cannot run
that toolchain here, so we model firmware as a composition of modules
with per-module ROM/RAM costs calibrated to the paper's reported
numbers (Section 5.2 and 5.5):

* DTLS adds ≈ 24 kB ROM and ≈ 1.5 kB RAM; OSCORE adds ≈ 11 kB ROM —
  "the DTLS part expects more than double the memory space of the
  OSCORE part";
* GET support adds ≈ 2 kB ROM (≈ 1 kB of it the URI-Template
  processor) and 173 B RAM;
* the DoC DNS part is ≈ 4 kB, "significantly larger than the other DNS
  transport implementations";
* Quant (QUIC+TLS, client only) "uses nearly double the ROM as any of
  the common IoT transports", with ≈ 20 kB of proposed savings.

The *relative* statements above are the claims the benchmarks verify;
the absolute values are anchors taken from the figures.
"""

from .modules import MODULES, Module, module
from .builds import (
    BuildSize,
    FIG5_TRANSPORTS,
    FIG8_TRANSPORTS,
    build_size,
    fig5_builds,
    fig8_builds,
)

__all__ = [
    "BuildSize",
    "FIG5_TRANSPORTS",
    "FIG8_TRANSPORTS",
    "MODULES",
    "Module",
    "build_size",
    "fig5_builds",
    "fig8_builds",
    "module",
]
