"""Constrained platform and link-technology constants (Table 2).

Table 2a: the RFC 7228 device classes DoC targets. Table 2b: the
link-layer characteristics that drive the fragmentation analysis. Both
are used by benchmarks to check that the reproduced builds and packets
actually fit the constraints the paper claims to satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class DeviceClass:
    """An RFC 7228 constrained-device class (Table 2a)."""

    name: str
    ram_bytes: int
    rom_bytes: int

    def fits(self, rom: int, ram: int) -> bool:
        """Whether a firmware image fits this class's budgets."""
        return rom <= self.rom_bytes and ram <= self.ram_bytes


#: Table 2a. Class 0 is "well below" 10/100 kB; we encode the bounds.
DEVICE_CLASSES: Dict[str, DeviceClass] = {
    "class0": DeviceClass("Class 0", ram_bytes=4_000, rom_bytes=48_000),
    "class1": DeviceClass("Class 1", ram_bytes=10_000, rom_bytes=100_000),
    "class2": DeviceClass("Class 2", ram_bytes=50_000, rom_bytes=250_000),
}

#: The paper's evaluation platform (STM32F103RE, Section 5.1).
EVALUATION_PLATFORM = DeviceClass(
    "IoT-LAB M3 (Cortex-M3)", ram_bytes=64_000, rom_bytes=512_000
)


@dataclass(frozen=True)
class LinkTechnology:
    """A constrained link technology (Table 2b)."""

    name: str
    data_rate_kbps: Tuple[float, float]
    frame_size_bytes: Tuple[int, int]

    @property
    def min_frame(self) -> int:
        return self.frame_size_bytes[0]

    def name_fraction(self, name_length: int) -> float:
        """Fraction of the smallest frame a name of this length uses —
        the Section 3 observation (24 chars = 18.9% of 802.15.4,
        40.7% of LoRaWAN's 59-byte PDU)."""
        return name_length / self.min_frame


#: Table 2b.
LINK_TECHNOLOGIES: Dict[str, LinkTechnology] = {
    "ieee802154": LinkTechnology("IEEE 802.15.4", (124, 162), (127, 127)),
    "ble": LinkTechnology("BLE", (125, 2000), (1280, 1280)),
    "lorawan": LinkTechnology("LoRaWAN", (0.3, 5), (59, 250)),
    "nbiot": LinkTechnology("NB-IoT", (30, 60), (1600, 1600)),
}
