"""Module taxonomy and per-module sizes (Appendix C categories).

The categories mirror the paper's grouping exactly: Application, DNS
(per transport, with the GET overhead split out), OSCORE, CoAP, sock,
DTLS, and the CoAP example app. Sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Module:
    """One firmware module: name, category, ROM and RAM footprint."""

    name: str
    category: str
    rom: int
    ram: int


MODULES: Dict[str, Module] = {}


def module(name: str, category: str, rom: int, ram: int) -> Module:
    entry = Module(name, category, rom, ram)
    MODULES[name] = entry
    return entry


# -- sock layer (GNRC access) -------------------------------------------------
module("sock_udp", "sock", rom=2_600, ram=600)
#: TinyDTLS's sock wrapper, counted with sock per Appendix C.
module("sock_dtls", "sock", rom=1_700, ram=400)

# -- transports ----------------------------------------------------------------
#: gCoAP with FETCH, block-wise, cache support and URI parsing.
module("gcoap", "CoAP", rom=12_500, ram=2_700)
#: TinyDTLS: record layer, PSK handshake, AES-CCM, HMAC, asym. support.
module("tinydtls", "DTLS", rom=24_000, ram=1_500)
#: libOSCORE incl. COSE/CBOR dependencies — roughly half of DTLS.
module("liboscore", "OSCORE", rom=11_000, ram=700)

# -- DNS implementations --------------------------------------------------------
#: RIOT's DNS message parser/composer + UDP query logic.
module("dns_udp", "DNS (w/o GET)", rom=1_600, ram=500)
#: DoDTLS client on top of the shared DNS message interface.
module("dns_dtls", "DNS (w/o GET)", rom=1_900, ram=550)
#: The DoC client (FETCH/POST), incl. CoAP option handling the paper
#: notes should eventually move into the CoAP module (~4 kB).
module("dns_doc", "DNS (w/o GET)", rom=4_100, ram=800)
#: GET support: URI-Template processor (~1 kB) + base64 + GET-specific
#: message handling (~1 kB), 173 B of RAM.
module("dns_doc_get", "DNS (GET overhead)", rom=2_000, ram=173)

# -- applications ----------------------------------------------------------------
#: The DNS requester experiment application (1 async context).
module("app_requester", "Application", rom=4_800, ram=2_200)
#: RIOT's standard gCoAP example (client+server), the "CoAP application
#: already present on the device".
module("app_coap_example", "CoAP example app", rom=5_200, ram=1_600)

# -- QUIC (Fig. 8; Quant on ESP32, client only) -----------------------------------
#: QUIC transport machinery without crypto.
module("quant_quic", "DNS Transport (w/o UDP & Crypto)", rom=33_000, ram=4_000)
#: picotls/warpcore TLS 1.3 stack used by Quant.
module("quant_tls", "Crypto (DTLS / TLS / OSCORE)", rom=29_000, ram=3_000)
#: Claimed possible optimisation savings for Quant (Section 5.5).
QUANT_OPTIMISATION_SAVINGS = 20_000
