"""Composing firmware builds from modules (Fig. 5 and Fig. 8)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .modules import MODULES, Module

#: Fig. 5 build compositions. Every build includes the requester
#: application and, per the paper's premise, the standard CoAP example
#: app (and therefore the CoAP library).
FIG5_TRANSPORTS: Dict[str, Tuple[str, ...]] = {
    "UDP": (
        "app_requester", "app_coap_example", "gcoap", "sock_udp", "dns_udp",
    ),
    "DTLSv1.2": (
        "app_requester", "app_coap_example", "gcoap", "sock_udp",
        "sock_dtls", "tinydtls", "dns_dtls",
    ),
    "CoAP": (
        "app_requester", "app_coap_example", "gcoap", "sock_udp", "dns_doc",
    ),
    "CoAPSv1.2": (
        "app_requester", "app_coap_example", "gcoap", "sock_udp",
        "sock_dtls", "tinydtls", "dns_doc",
    ),
    "OSCORE": (
        "app_requester", "app_coap_example", "gcoap", "sock_udp",
        "liboscore", "dns_doc",
    ),
}

#: Fig. 8 compositions: UDP layer and sock intentionally omitted for
#: comparability with Quant; crypto split out as its own category.
FIG8_TRANSPORTS: Dict[str, Tuple[str, ...]] = {
    "UDP": ("app_requester", "dns_udp"),
    "DTLSv1.2": ("app_requester", "tinydtls", "dns_dtls"),
    "CoAP": ("app_requester", "gcoap", "dns_doc"),
    "CoAPSv1.2": ("app_requester", "gcoap", "tinydtls", "dns_doc"),
    "OSCORE": ("app_requester", "gcoap", "liboscore", "dns_doc"),
    "QUIC": ("app_requester", "quant_quic", "quant_tls"),
}


@dataclass(frozen=True)
class BuildSize:
    """Total and per-category ROM/RAM of one firmware build."""

    name: str
    rom: int
    ram: int
    rom_by_category: Dict[str, int]
    ram_by_category: Dict[str, int]

    @property
    def rom_kbytes(self) -> float:
        return self.rom / 1000.0

    @property
    def ram_kbytes(self) -> float:
        return self.ram / 1000.0


def build_size(
    name: str, module_names: Tuple[str, ...], with_get: bool = False
) -> BuildSize:
    """Sum the sizes of *module_names* (optionally plus GET support)."""
    names: List[str] = list(module_names)
    if with_get:
        names.append("dns_doc_get")
    rom_by_category: Dict[str, int] = {}
    ram_by_category: Dict[str, int] = {}
    for module_name in names:
        mod: Module = MODULES[module_name]
        rom_by_category[mod.category] = (
            rom_by_category.get(mod.category, 0) + mod.rom
        )
        ram_by_category[mod.category] = (
            ram_by_category.get(mod.category, 0) + mod.ram
        )
    return BuildSize(
        name=name,
        rom=sum(rom_by_category.values()),
        ram=sum(ram_by_category.values()),
        rom_by_category=rom_by_category,
        ram_by_category=ram_by_category,
    )


def fig5_builds(with_get: bool = False) -> Dict[str, BuildSize]:
    """The five Fig. 5 builds; ``with_get`` adds GET support to the
    CoAP-based ones (the hatched "GET overhead" segments)."""
    builds = {}
    for name, modules in FIG5_TRANSPORTS.items():
        get = with_get and name in ("CoAP", "CoAPSv1.2")
        builds[name] = build_size(name, modules, with_get=get)
    return builds


def fig8_builds() -> Dict[str, BuildSize]:
    """The six Fig. 8 builds (UDP/sock omitted, crypto split out)."""
    return {
        name: build_size(name, modules)
        for name, modules in FIG8_TRANSPORTS.items()
    }
