"""The paper's compile-time configuration (Table 6) and its mapping to
this repository's knobs.

Table 6 lists the RIOT parameters the authors changed; each entry here
records the RIOT name, the paper's value, and where the equivalent
lives in this codebase, so experiment setups can be audited against the
paper line by line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class ConfigParameter:
    """One Table 6 row."""

    riot_name: str
    paper_value: str
    equivalent: str
    notes: str = ""


#: Table 6, in order. The asterisked proxy values are noted per row.
TABLE6: Tuple[ConfigParameter, ...] = (
    ConfigParameter(
        "CONFIG_DNS_CACHE_SIZE", "8",
        "repro.dns.cache.DNSCache(capacity=8)",
        "client DNS caches in the caching study",
    ),
    ConfigParameter(
        "CONFIG_DTLS_PEER_MAX", "2",
        "repro.transports.DtlsServerAdapter (sessions dict, unbounded)",
        "the simulator does not need a hard peer cap",
    ),
    ConfigParameter(
        "CONFIG_GCOAP_DNS_BLOCK_SIZE", "8/16/32/64",
        "repro.doc.DocClient(block_size=...)",
        "block-wise runs only (Appendix D)",
    ),
    ConfigParameter(
        "CONFIG_GCOAP_PDU_BUF_SIZE", "228",
        "n/a (Python buffers)",
        "bounded buffers are a C memory concern",
    ),
    ConfigParameter(
        "CONFIG_GCOAP_REQ_WAITING_MAX", "60 / 71*",
        "repro.coap.endpoint.CoapClient (exchange dict, unbounded)",
        "",
    ),
    ConfigParameter(
        "CONFIG_GCOAP_RESEND_BUFS_MAX", "60 / 71*",
        "repro.coap.endpoint (per-exchange retransmission state)",
        "",
    ),
    ConfigParameter(
        "CONFIG_GNRC_IPV6_NIB_NUMOF", "8*",
        "repro.stack.node.Node.routes (static)",
        "RPL replaced by static routes",
    ),
    ConfigParameter(
        "CONFIG_GNRC_PKTBUF_SIZE", "3072",
        "n/a (Python buffers)",
        "",
    ),
    ConfigParameter(
        "CONFIG_NANOCOAP_CACHE_ENTRIES", "8 / 50*",
        "repro.coap.cache.CoapCache(capacity=8) clients, 50 proxy",
        "see repro.coap.proxy.ForwardProxy(cache_entries=50)",
    ),
    ConfigParameter(
        "CONFIG_NANOCOAP_CACHE_RESPONSE_SIZE", "228",
        "n/a (Python buffers)",
        "",
    ),
    ConfigParameter(
        "CONFIG_SOCK_DODTLS_RETRIES", "4",
        "repro.coap.reliability.ReliabilityParams(max_retransmit=4)",
        "DoDTLS adopts the CoAP retransmission count",
    ),
    ConfigParameter(
        "CONFIG_SOCK_DODTLS_TIMEOUT_MS", "2000",
        "repro.coap.reliability.ReliabilityParams(ack_timeout=2.0)",
        "",
    ),
)


def paper_defaults() -> dict:
    """The defaults experiments should use to mirror the paper."""
    return {
        "dns_cache_capacity": 8,
        "coap_cache_capacity_client": 8,
        "coap_cache_capacity_proxy": 50,
        "max_retransmit": 4,
        "ack_timeout": 2.0,
        "block_sizes": (16, 32, 64),
        "query_rate": 5.0,
        "queries_per_run": 50,
        "name_length": 24,
        "runs": 10,
    }
