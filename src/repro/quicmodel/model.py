"""QUIC packet-size arithmetic (Figure 9).

QUIC header sizes vary with handshake type and field widths; the paper
sweeps the 0-RTT range (40-88 bytes, long header with connection IDs
and token) and the 1-RTT range (24-64 bytes, short header). A DoQ
packet is header + DNS message + 16-byte AEAD tag; the penalty is its
link-layer footprint relative to the DTLS/CoAPS/OSCORE packets built by
:mod:`repro.experiments.packet_sizes`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.packet_sizes import (
    MEDIAN_NAME,
    _frame_sizes_for_udp_payload,
    dissect_transport,
)

#: TLS 1.3 AEAD tag appended to every protected QUIC packet.
QUIC_AEAD_TAG = 16
#: Figure 9a/9b x-axis ranges.
HEADER_RANGE_0RTT = (40, 88)
HEADER_RANGE_1RTT = (24, 64)

_BASELINES = ("DTLSv1.2", "CoAPSv1.2", "OSCORE")
_MESSAGES = ("query", "response_a", "response_aaaa")


def quic_packet_size(header_size: int, dns_length: int) -> int:
    """UDP payload of a protected QUIC packet carrying a DNS message.

    DoQ (RFC 9250) prefixes each message with a 2-byte length on the
    stream, and the stream frame costs are folded into the swept header
    size, as in the paper's best/worst-case analysis.
    """
    return header_size + 2 + dns_length + QUIC_AEAD_TAG


def link_layer_bytes(udp_payload: int) -> int:
    """Total 802.15.4 frame bytes for a UDP payload of this size."""
    return sum(_frame_sizes_for_udp_payload(udp_payload))


def _baseline_link_bytes(name: str = MEDIAN_NAME) -> Dict[str, Dict[str, int]]:
    mapping = {
        "DTLSv1.2": dissect_transport("dtls", name=name),
        "CoAPSv1.2": dissect_transport("coaps", name=name),
        "OSCORE": dissect_transport("oscore", name=name),
    }
    out: Dict[str, Dict[str, int]] = {}
    for transport, dissections in mapping.items():
        out[transport] = {
            d.message: d.total_link_bytes for d in dissections
        }
    return out


def quic_penalty(
    header_size: int,
    baseline: str,
    message: str,
    name: str = MEDIAN_NAME,
) -> float:
    """Percentage of link-layer data DoQ needs relative to *baseline*.

    100% means parity; >100% means DNS over QUIC costs more.
    """
    if baseline not in _BASELINES:
        raise ValueError(f"baseline must be one of {_BASELINES}")
    if message not in _MESSAGES:
        raise ValueError(f"message must be one of {_MESSAGES}")
    baselines = _baseline_link_bytes(name)
    dns_lengths = {
        d.message: d.dns_bytes for d in dissect_transport("udp", name=name)
    }
    quic_udp = quic_packet_size(header_size, dns_lengths[message])
    quic_bytes = link_layer_bytes(quic_udp)
    return 100.0 * quic_bytes / baselines[baseline][message]


def penalty_series(
    mode: str,
    baseline: str,
    message: str,
    step: int = 8,
    name: str = MEDIAN_NAME,
) -> List[Tuple[int, float]]:
    """The Figure 9 series: (header size, penalty %) across the sweep.

    *mode* is ``"0rtt"`` or ``"1rtt"``.
    """
    low, high = HEADER_RANGE_0RTT if mode == "0rtt" else HEADER_RANGE_1RTT
    return [
        (header, quic_penalty(header, baseline, message, name))
        for header in range(low, high + 1, step)
    ]


def quic_dissections(name: str = None) -> List["PacketDissection"]:
    """Figure 6-style dissection rows for the modeled QUIC transport.

    The dissection hook behind the ``quic`` transport profile: for each
    canonical message it emits the best-case 1-RTT packet (minimum
    short header) and, for the query, the worst-case 0-RTT packet
    (maximum long header) — the two ends of the Figure 9 sweep. All
    non-DNS bytes (header, length prefix, AEAD tag) are reported as
    security overhead.
    """
    from repro.experiments.packet_sizes import PacketDissection

    name = name or MEDIAN_NAME
    dns_lengths = {
        d.message: d.dns_bytes for d in dissect_transport("udp", name=name)
    }
    variants = [
        ("query", HEADER_RANGE_1RTT[0], ""),
        ("response_a", HEADER_RANGE_1RTT[0], ""),
        ("response_aaaa", HEADER_RANGE_1RTT[0], ""),
        ("query", HEADER_RANGE_0RTT[1], " (0-RTT max)"),
        ("response_aaaa", HEADER_RANGE_0RTT[1], " (0-RTT max)"),
    ]
    dissections = []
    for message, header, suffix in variants:
        dns_len = dns_lengths[message]
        payload = quic_packet_size(header, dns_len)
        frames = tuple(_frame_sizes_for_udp_payload(payload))
        dissections.append(
            PacketDissection(
                transport="quic",
                message=message + suffix,
                dns_bytes=dns_len,
                security_bytes=payload - dns_len,
                coap_bytes=0,
                udp_payload=payload,
                frame_sizes=frames,
                fragments=len(frames),
            )
        )
    return dissections


def aaaa_fragments_worst_case(name: str = MEDIAN_NAME) -> int:
    """Fragments of an AAAA response with the largest 0-RTT header
    (the paper: 3 fragments)."""
    dns_lengths = {
        d.message: d.dns_bytes for d in dissect_transport("udp", name=name)
    }
    payload = quic_packet_size(HEADER_RANGE_0RTT[1], dns_lengths["response_aaaa"])
    return len(_frame_sizes_for_udp_payload(payload))
