"""Numerical DNS-over-QUIC comparison (Section 5.5, Figure 9).

The paper's Figure 9 is itself a numerical evaluation: for QUIC header
sizes spanning the best and worst cases of 0-RTT and 1-RTT packets, it
computes the link-layer bytes a DoQ exchange would need relative to
DTLSv1.2, CoAPSv1.2, and OSCORE. This package reproduces that
arithmetic using the real link-layer framing from :mod:`repro.lowpan`.
"""

from .model import (
    HEADER_RANGE_0RTT,
    HEADER_RANGE_1RTT,
    link_layer_bytes,
    quic_dissections,
    quic_packet_size,
    quic_penalty,
    penalty_series,
)

__all__ = [
    "HEADER_RANGE_0RTT",
    "HEADER_RANGE_1RTT",
    "link_layer_bytes",
    "penalty_series",
    "quic_dissections",
    "quic_packet_size",
    "quic_penalty",
]
