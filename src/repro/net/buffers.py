"""Zero-copy parse cursors and reusable encode buffers.

The wire codecs (DNS, CoAP, CBOR, 6LoWPAN, DTLS) share two hot-path
conventions, both provided here:

* **Decode** works over a flat byte buffer — ``bytes`` or
  ``memoryview`` — indexed in place. Multi-byte fields come out of
  ``struct.unpack_from`` (or :class:`BufReader` where a cursor reads
  better than explicit offsets), and sub-slices stay views until a
  value is *stored* in a decoded object, at which point it is
  materialised exactly once with ``bytes(...)``. Decoders never mutate
  their input.
* **Encode** appends into a single ``bytearray`` end to end
  (``encode_into(out, ...)`` style). For per-tick paths that encode at
  a high rate, :func:`scratch` hands out a cleared, reusable buffer so
  steady-state encoding allocates nothing but the final ``bytes()``.

Nothing here imports from the codec packages, so every codec may import
from this module without cycles.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple, Type, Union

Buffer = Union[bytes, bytearray, memoryview]

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U48 = struct.Struct("!IH")
_U64 = struct.Struct("!Q")

unpack_u16 = _U16.unpack_from
unpack_u32 = _U32.unpack_from


def as_view(data: Buffer) -> memoryview:
    """A flat ``uint8`` :class:`memoryview` over *data*, without copying.

    Accepts ``bytes``, ``bytearray``, ``memoryview`` (re-cast to a flat
    byte view if needed), or anything else exposing the buffer protocol.
    """
    view = data if type(data) is memoryview else memoryview(data)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    return view


def materialize(data: Buffer) -> bytes:
    """*data* as ``bytes``, copying only when it is not already bytes.

    This is the single boundary materialisation decoders perform before
    storing a value (or memoising on it); ``bytes`` input passes through
    untouched.
    """
    return data if type(data) is bytes else bytes(data)


class BufReader:
    """A bounds-checked forward cursor over a byte buffer.

    All reads advance the cursor; underflow raises the ``error`` class
    the reader was constructed with (a :class:`ValueError` subclass per
    codec), never ``IndexError``/``struct.error``. Slices returned by
    :meth:`take` are views into the underlying buffer — call
    :meth:`take_bytes` for an owned copy at a storage boundary.
    """

    __slots__ = ("data", "pos", "end", "error")

    def __init__(
        self,
        data: Buffer,
        pos: int = 0,
        end: int | None = None,
        error: Type[ValueError] = ValueError,
    ) -> None:
        self.data = data
        self.pos = pos
        self.end = len(data) if end is None else end
        self.error = error

    def __len__(self) -> int:
        return self.end - self.pos

    @property
    def exhausted(self) -> bool:
        return self.pos >= self.end

    def need(self, count: int) -> None:
        if self.pos + count > self.end:
            raise self.error(
                f"need {count} byte(s) at offset {self.pos}, "
                f"have {self.end - self.pos}"
            )

    def u8(self) -> int:
        if self.pos >= self.end:
            raise self.error(f"need 1 byte at offset {self.pos}, have 0")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def peek_u8(self) -> int:
        if self.pos >= self.end:
            raise self.error(f"need 1 byte at offset {self.pos}, have 0")
        return self.data[self.pos]

    def u16(self) -> int:
        self.need(2)
        (value,) = _U16.unpack_from(self.data, self.pos)
        self.pos += 2
        return value

    def u32(self) -> int:
        self.need(4)
        (value,) = _U32.unpack_from(self.data, self.pos)
        self.pos += 4
        return value

    def u48(self) -> int:
        self.need(6)
        high, low = _U48.unpack_from(self.data, self.pos)
        self.pos += 6
        return (high << 16) | low

    def u64(self) -> int:
        self.need(8)
        (value,) = _U64.unpack_from(self.data, self.pos)
        self.pos += 8
        return value

    def uint(self, count: int) -> int:
        """A big-endian unsigned integer of *count* bytes."""
        self.need(count)
        value = int.from_bytes(self.data[self.pos : self.pos + count], "big")
        self.pos += count
        return value

    def take(self, count: int) -> Buffer:
        """The next *count* bytes as a zero-copy slice (view for views)."""
        self.need(count)
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def take_bytes(self, count: int) -> bytes:
        """The next *count* bytes materialised as owned ``bytes``."""
        self.need(count)
        chunk = materialize(self.data[self.pos : self.pos + count])
        self.pos += count
        return chunk

    def skip(self, count: int) -> None:
        self.need(count)
        self.pos += count

    def rest(self) -> Buffer:
        """Everything from the cursor to the end, as a zero-copy slice."""
        chunk = self.data[self.pos : self.end]
        self.pos = self.end
        return chunk

    def rest_bytes(self) -> bytes:
        """Everything from the cursor to the end, materialised."""
        return materialize(self.rest())


# -- reusable encode buffers ----------------------------------------------

_SCRATCH: Dict[str, bytearray] = {}


def scratch(tag: str) -> bytearray:
    """A cleared, reusable ``bytearray`` for the call site named *tag*.

    The buffer keeps its capacity across calls, so a steady-state encode
    path reuses one allocation instead of growing a fresh ``bytearray``
    per message. **Not reentrant**: each tag must be used by one encode
    at a time (true of the single-threaded sim and the asyncio live
    stack); never hold a reference across calls for the same tag.
    """
    buf = _SCRATCH.get(tag)
    if buf is None:
        buf = bytearray()
        _SCRATCH[tag] = buf
    else:
        del buf[:]
    return buf


def scratch_tags() -> Tuple[str, ...]:
    """The tags with live scratch buffers (introspection/tests)."""
    return tuple(_SCRATCH)
