"""IPv6 header encoding (RFC 8200) and address helpers."""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

IPV6_HEADER_LEN = 40
NEXT_HEADER_UDP = 17
DEFAULT_HOP_LIMIT = 64


def link_local(iid: int) -> str:
    """A link-local address ``fe80::/64`` with the given 64-bit IID."""
    if not 0 <= iid < 1 << 64:
        raise ValueError("interface ID must fit in 64 bits")
    address = (0xFE80 << 112) | iid
    return str(ipaddress.IPv6Address(address))

def is_link_local(address: str) -> bool:
    return ipaddress.IPv6Address(address).is_link_local


def global_address(iid: int, prefix: int = 0x2001_0DB8_0000_0000) -> str:
    """A global unicast address ``2001:db8::/64`` with the given IID.

    Global addresses cannot be elided by stateless IPHC (the paper
    deactivates context-based compression, Section 5.1), so they travel
    fully inline — 16 bytes each — which is what pushes several packet
    types of Figure 6 over the fragmentation limit.
    """
    if not 0 <= iid < 1 << 64:
        raise ValueError("interface ID must fit in 64 bits")
    return str(ipaddress.IPv6Address((prefix << 64) | iid))


def interface_id(address: str) -> int:
    """The low 64 bits of *address*."""
    return int(ipaddress.IPv6Address(address)) & ((1 << 64) - 1)


@dataclass(frozen=True)
class Ipv6Packet:
    """An IPv6 packet carrying a UDP payload.

    ``payload`` is the complete next-header payload (e.g. the encoded
    UDP datagram). Traffic class and flow label default to 0, matching
    the paper's setup so IPHC elides them.
    """

    src: str
    dst: str
    payload: bytes
    next_header: int = NEXT_HEADER_UDP
    hop_limit: int = DEFAULT_HOP_LIMIT
    traffic_class: int = 0
    flow_label: int = 0

    def encode(self) -> bytes:
        """Uncompressed wire format (40-byte header + payload)."""
        if len(self.payload) > 0xFFFF:
            raise ValueError("payload too long for IPv6 length field")
        first = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        header = (
            first.to_bytes(4, "big")
            + len(self.payload).to_bytes(2, "big")
            + bytes([self.next_header, self.hop_limit])
            + ipaddress.IPv6Address(self.src).packed
            + ipaddress.IPv6Address(self.dst).packed
        )
        return header + self.payload

    @property
    def total_length(self) -> int:
        return IPV6_HEADER_LEN + len(self.payload)

    def hop_decremented(self) -> "Ipv6Packet":
        """The packet after one routing hop."""
        if self.hop_limit <= 1:
            raise ValueError("hop limit exhausted")
        return Ipv6Packet(
            self.src,
            self.dst,
            self.payload,
            self.next_header,
            self.hop_limit - 1,
            self.traffic_class,
            self.flow_label,
        )

    @classmethod
    def decode(cls, data: bytes) -> "Ipv6Packet":
        if len(data) < IPV6_HEADER_LEN:
            raise ValueError("truncated IPv6 header")
        first = int.from_bytes(data[0:4], "big")
        version = first >> 28
        if version != 6:
            raise ValueError(f"not an IPv6 packet (version {version})")
        length = int.from_bytes(data[4:6], "big")
        packet = cls(
            src=str(ipaddress.IPv6Address(data[8:24])),
            dst=str(ipaddress.IPv6Address(data[24:40])),
            payload=bytes(data[40 : 40 + length]),
            next_header=data[6],
            hop_limit=data[7],
            traffic_class=(first >> 20) & 0xFF,
            flow_label=first & 0xFFFFF,
        )
        if len(packet.payload) != length:
            raise ValueError("truncated IPv6 payload")
        return packet
