"""IPv6 header encoding (RFC 8200) and address helpers.

The simulator shuttles addresses around as presentation-format strings
but needs their binary forms on every frame (IPHC compression, UDP
pseudo-header checksums, multicast routing checks). A simulation uses
a small, fixed set of addresses, so every conversion is memoised —
profiles showed ``ipaddress`` string parsing as one of the costliest
per-frame operations before these caches existed.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from functools import lru_cache

_HEXTETS = struct.Struct("!8H")

IPV6_HEADER_LEN = 40
NEXT_HEADER_UDP = 17
DEFAULT_HOP_LIMIT = 64


@lru_cache(maxsize=8192)
def address_int(address: str) -> int:
    """*address* as a 128-bit integer (memoised)."""
    return int(ipaddress.IPv6Address(address))


@lru_cache(maxsize=8192)
def packed_address(address: str) -> bytes:
    """*address* in 16-byte network order (memoised)."""
    return ipaddress.IPv6Address(address).packed


@lru_cache(maxsize=8192)
def address_from_int(value: int) -> str:
    """Canonical presentation form of a 128-bit value (memoised)."""
    return address_from_packed(value.to_bytes(16, "big"))


@lru_cache(maxsize=8192)
def address_from_packed(packed: bytes) -> str:
    """Canonical presentation form of 16 network-order bytes (memoised).

    A direct RFC 5952 formatter: lowercase hextets without leading
    zeros and the leftmost longest run of two or more zero hextets
    compressed to ``::``. Byte-identical to ``str(IPv6Address(...))``
    (property-tested) but several times faster — AAAA rdata decoding
    made the ``ipaddress`` round-trip the hottest part of cache-miss
    DNS decodes.
    """
    hextets = _HEXTETS.unpack(packed)
    best_start = -1
    best_len = 0
    run_start = -1
    for index in range(8):
        if hextets[index] == 0:
            if run_start < 0:
                run_start = index
            if index - run_start + 1 > best_len:
                best_start = run_start
                best_len = index - run_start + 1
        else:
            run_start = -1
    if best_len < 2:
        return "%x:%x:%x:%x:%x:%x:%x:%x" % hextets
    head = ":".join("%x" % value for value in hextets[:best_start])
    tail = ":".join("%x" % value for value in hextets[best_start + best_len :])
    return f"{head}::{tail}"


@lru_cache(maxsize=8192)
def canonical_address(address: str) -> str:
    """The canonical (compressed, lowercase) form of *address*."""
    return str(ipaddress.IPv6Address(address))


@lru_cache(maxsize=8192)
def is_multicast(address: str) -> bool:
    """True for ``ff00::/8`` addresses (memoised)."""
    return address_int(address) >> 120 == 0xFF


def link_local(iid: int) -> str:
    """A link-local address ``fe80::/64`` with the given 64-bit IID."""
    if not 0 <= iid < 1 << 64:
        raise ValueError("interface ID must fit in 64 bits")
    return address_from_int((0xFE80 << 112) | iid)


def is_link_local(address: str) -> bool:
    return address_int(address) >> 118 == 0x3FA  # fe80::/10


def global_address(iid: int, prefix: int = 0x2001_0DB8_0000_0000) -> str:
    """A global unicast address ``2001:db8::/64`` with the given IID.

    Global addresses cannot be elided by stateless IPHC (the paper
    deactivates context-based compression, Section 5.1), so they travel
    fully inline — 16 bytes each — which is what pushes several packet
    types of Figure 6 over the fragmentation limit.
    """
    if not 0 <= iid < 1 << 64:
        raise ValueError("interface ID must fit in 64 bits")
    return address_from_int((prefix << 64) | iid)


def interface_id(address: str) -> int:
    """The low 64 bits of *address*."""
    return address_int(address) & ((1 << 64) - 1)


@dataclass(frozen=True, slots=True)
class Ipv6Packet:
    """An IPv6 packet carrying a UDP payload.

    ``payload`` is the complete next-header payload (e.g. the encoded
    UDP datagram). Traffic class and flow label default to 0, matching
    the paper's setup so IPHC elides them.
    """

    src: str
    dst: str
    payload: bytes
    next_header: int = NEXT_HEADER_UDP
    hop_limit: int = DEFAULT_HOP_LIMIT
    traffic_class: int = 0
    flow_label: int = 0

    def encode(self) -> bytes:
        """Uncompressed wire format (40-byte header + payload)."""
        if len(self.payload) > 0xFFFF:
            raise ValueError("payload too long for IPv6 length field")
        first = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        header = (
            first.to_bytes(4, "big")
            + len(self.payload).to_bytes(2, "big")
            + bytes([self.next_header, self.hop_limit])
            + packed_address(self.src)
            + packed_address(self.dst)
        )
        return header + self.payload

    @property
    def total_length(self) -> int:
        return IPV6_HEADER_LEN + len(self.payload)

    def hop_decremented(self) -> "Ipv6Packet":
        """The packet after one routing hop."""
        if self.hop_limit <= 1:
            raise ValueError("hop limit exhausted")
        return Ipv6Packet(
            self.src,
            self.dst,
            self.payload,
            self.next_header,
            self.hop_limit - 1,
            self.traffic_class,
            self.flow_label,
        )

    @classmethod
    def decode(cls, data: bytes) -> "Ipv6Packet":
        if len(data) < IPV6_HEADER_LEN:
            raise ValueError("truncated IPv6 header")
        first = int.from_bytes(data[0:4], "big")
        version = first >> 28
        if version != 6:
            raise ValueError(f"not an IPv6 packet (version {version})")
        length = int.from_bytes(data[4:6], "big")
        packet = cls(
            src=address_from_packed(bytes(data[8:24])),
            dst=address_from_packed(bytes(data[24:40])),
            payload=bytes(data[40 : 40 + length]),
            next_header=data[6],
            hop_limit=data[7],
            traffic_class=(first >> 20) & 0xFF,
            flow_label=first & 0xFFFFF,
        )
        if len(packet.payload) != length:
            raise ValueError("truncated IPv6 payload")
        return packet
