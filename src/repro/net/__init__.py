"""IPv6 and UDP packet construction (the uncompressed reference forms).

6LoWPAN compression needs the *uncompressed* IPv6/UDP encoding both as
its input and to size fragmentation (datagram_size counts uncompressed
bytes, RFC 4944 §5.3). The paper's setup zeroes traffic class and flow
label so IPHC can elide them; that is the default here too.
"""

from .ipv6 import Ipv6Packet, global_address, interface_id, is_link_local, link_local
from .udp import UdpDatagram, udp_checksum

__all__ = [
    "Ipv6Packet",
    "global_address",
    "UdpDatagram",
    "interface_id",
    "is_link_local",
    "link_local",
    "udp_checksum",
]
