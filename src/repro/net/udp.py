"""UDP datagram encoding (RFC 768) with the IPv6 pseudo-header checksum."""

from __future__ import annotations

from dataclasses import dataclass

from .ipv6 import packed_address

UDP_HEADER_LEN = 8


def _ones_complement_sum(data: bytes) -> int:
    """Fold *data* as 16-bit words with end-around carry.

    Because ``2**16 ≡ 1 (mod 65535)``, the ones'-complement sum of all
    16-bit words equals the whole buffer taken as one big integer
    modulo 0xFFFF — one C-level conversion instead of a Python loop.
    (The fold maps a word sum of 0xFFFF to 0; both invert to the same
    checksum, so :func:`udp_checksum` is unaffected.)
    """
    if len(data) % 2:
        data += b"\x00"
    return int.from_bytes(data, "big") % 0xFFFF


def udp_checksum(src: str, dst: str, datagram: bytes) -> int:
    """RFC 8200 §8.1 checksum over pseudo-header and UDP datagram."""
    pseudo = (
        packed_address(src)
        + packed_address(dst)
        + len(datagram).to_bytes(4, "big")
        + b"\x00\x00\x00\x11"
    )
    total = _ones_complement_sum(pseudo + datagram)
    checksum = (~total) & 0xFFFF
    return checksum or 0xFFFF  # 0 is transmitted as all-ones


@dataclass(frozen=True, slots=True)
class UdpDatagram:
    """A UDP datagram; checksum is computed on encode."""

    src_port: int
    dst_port: int
    payload: bytes

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port {port} out of range")

    @property
    def length(self) -> int:
        return UDP_HEADER_LEN + len(self.payload)

    def encode(self, src_addr: str, dst_addr: str) -> bytes:
        header_no_checksum = (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.length.to_bytes(2, "big")
            + b"\x00\x00"
        )
        checksum = udp_checksum(
            src_addr, dst_addr, header_no_checksum + self.payload
        )
        return (
            header_no_checksum[:6]
            + checksum.to_bytes(2, "big")
            + self.payload
        )

    def encode_with_checksum(self, checksum: bytes) -> bytes:
        """Wire format with a checksum carried from the wire.

        6LoWPAN NHC always transports the UDP checksum inline, so a
        decompressor can splice the received value back in instead of
        recomputing it over the pseudo-header — the bytes are identical
        because the pseudo-header inputs did not change on the hop.
        """
        return (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.length.to_bytes(2, "big")
            + checksum
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "UdpDatagram":
        if len(data) < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        length = int.from_bytes(data[4:6], "big")
        if length < UDP_HEADER_LEN or length > len(data):
            raise ValueError("invalid UDP length")
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            payload=bytes(data[UDP_HEADER_LEN:length]),
        )
