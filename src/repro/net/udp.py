"""UDP datagram encoding (RFC 768) with the IPv6 pseudo-header checksum."""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

UDP_HEADER_LEN = 8


def _ones_complement_sum(data: bytes) -> int:
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return total


def udp_checksum(src: str, dst: str, datagram: bytes) -> int:
    """RFC 8200 §8.1 checksum over pseudo-header and UDP datagram."""
    pseudo = (
        ipaddress.IPv6Address(src).packed
        + ipaddress.IPv6Address(dst).packed
        + len(datagram).to_bytes(4, "big")
        + b"\x00\x00\x00\x11"
    )
    total = _ones_complement_sum(pseudo + datagram)
    checksum = (~total) & 0xFFFF
    return checksum or 0xFFFF  # 0 is transmitted as all-ones


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram; checksum is computed on encode."""

    src_port: int
    dst_port: int
    payload: bytes

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port {port} out of range")

    @property
    def length(self) -> int:
        return UDP_HEADER_LEN + len(self.payload)

    def encode(self, src_addr: str, dst_addr: str) -> bytes:
        header_no_checksum = (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.length.to_bytes(2, "big")
            + b"\x00\x00"
        )
        checksum = udp_checksum(
            src_addr, dst_addr, header_no_checksum + self.payload
        )
        return (
            header_no_checksum[:6]
            + checksum.to_bytes(2, "big")
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "UdpDatagram":
        if len(data) < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        length = int.from_bytes(data[4:6], "big")
        if length < UDP_HEADER_LEN or length > len(data):
            raise ValueError("invalid UDP length")
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            payload=bytes(data[UDP_HEADER_LEN:length]),
        )
