"""Concise Binary Object Representation (CBOR, RFC 8949) — minimal codec.

This is a from-scratch implementation of the CBOR subset required by the
rest of the repository:

* COSE_Encrypt0 objects for OSCORE (:mod:`repro.oscore`),
* the compressed DNS message format of Section 7 of the paper
  (:mod:`repro.doc.cbor_format`).

Supported major types: unsigned/negative integers, byte strings, text
strings, arrays, maps, tags, simple values (false/true/null), and floats.
Indefinite-length items are supported on decode and rejected on encode
(deterministic encoding only, per RFC 8949 §4.2).

Example
-------
>>> from repro.cborlib import dumps, loads
>>> dumps(["example.org", 28])
b'\\x82kexample.org\\x18\\x1c'
>>> loads(dumps({1: b"key"}))
{1: b'key'}
"""

from .encoder import CBOREncodeError, dump_into, dumps
from .decoder import CBORDecodeError, loads, loads_prefix
from .types import Tag, Simple, UNDEFINED

__all__ = [
    "CBORDecodeError",
    "CBOREncodeError",
    "Simple",
    "Tag",
    "UNDEFINED",
    "dump_into",
    "dumps",
    "loads",
    "loads_prefix",
]
