"""Auxiliary CBOR value types (tags and simple values)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Tag:
    """A tagged CBOR value (major type 6).

    Attributes
    ----------
    number:
        The tag number (e.g. ``1`` for epoch-based time).
    value:
        The tagged content, any encodable CBOR value.
    """

    number: int
    value: Any

    def __post_init__(self) -> None:
        if self.number < 0:
            raise ValueError("tag number must be non-negative")


@dataclass(frozen=True)
class Simple:
    """A CBOR simple value (major type 7) other than false/true/null."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 255 or 24 <= self.value < 32:
            raise ValueError(f"invalid simple value {self.value}")


#: The CBOR ``undefined`` simple value (0xf7).
UNDEFINED = Simple(23)
