"""Deterministic CBOR encoding (RFC 8949 §4.2 core requirements).

Integers use the shortest form, map keys are sorted bytewise by their
encoded form, and indefinite-length items are never produced.

Encoding appends into one ``bytearray`` end to end (:func:`dump_into`);
:func:`dumps` is the materialising wrapper. Only map entries need
intermediate buffers, because deterministic ordering sorts by encoded
key bytes.
"""

from __future__ import annotations

import math
import struct
from typing import Any

from .types import Simple, Tag

_MT_UNSIGNED = 0
_MT_NEGATIVE = 1
_MT_BYTES = 2
_MT_TEXT = 3
_MT_ARRAY = 4
_MT_MAP = 5
_MT_TAG = 6
_MT_SIMPLE = 7


class CBOREncodeError(ValueError):
    """Raised when a value cannot be represented in CBOR."""


def _head_into(out: bytearray, major: int, argument: int) -> None:
    """Append the initial byte(s): major type plus shortest-form argument."""
    if argument < 0:
        raise CBOREncodeError("argument must be non-negative")
    mt = major << 5
    if argument < 24:
        out.append(mt | argument)
    elif argument < 0x100:
        out.append(mt | 24)
        out.append(argument)
    elif argument < 0x10000:
        out.append(mt | 25)
        out += argument.to_bytes(2, "big")
    elif argument < 0x100000000:
        out.append(mt | 26)
        out += argument.to_bytes(4, "big")
    elif argument < 0x10000000000000000:
        out.append(mt | 27)
        out += argument.to_bytes(8, "big")
    else:
        raise CBOREncodeError("integer too large for CBOR head")


def _encode_float(value: float) -> bytes:
    # Deterministic encoding: use the shortest float representation that
    # round-trips. Half precision is attempted first, then single.
    if math.isnan(value):
        return b"\xf9\x7e\x00"
    try:
        half = struct.pack(">e", value)
        if struct.unpack(">e", half)[0] == value:
            return b"\xf9" + half
    except (OverflowError, struct.error):
        pass
    try:
        single = struct.pack(">f", value)
        if struct.unpack(">f", single)[0] == value:
            return b"\xfa" + single
    except (OverflowError, struct.error):
        pass
    return b"\xfb" + struct.pack(">d", value)


def dump_into(out: bytearray, value: Any) -> None:
    """Append the deterministic CBOR encoding of *value* to *out*."""
    if value is False:
        out.append(0xF4)
    elif value is True:
        out.append(0xF5)
    elif value is None:
        out.append(0xF6)
    elif isinstance(value, int):
        if value >= 0:
            _head_into(out, _MT_UNSIGNED, value)
        else:
            _head_into(out, _MT_NEGATIVE, -1 - value)
    elif isinstance(value, float):
        out += _encode_float(value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        _head_into(out, _MT_BYTES, len(value))
        out += value
    elif isinstance(value, str):
        data = value.encode("utf-8")
        _head_into(out, _MT_TEXT, len(data))
        out += data
    elif isinstance(value, (list, tuple)):
        _head_into(out, _MT_ARRAY, len(value))
        for item in value:
            dump_into(out, item)
    elif isinstance(value, dict):
        # Deterministic maps sort entries by the encoded key bytes, so
        # each pair is encoded into its own scratch before the sort.
        encoded_pairs = []
        for key, val in value.items():
            key_buf = bytearray()
            dump_into(key_buf, key)
            val_buf = bytearray()
            dump_into(val_buf, val)
            encoded_pairs.append((bytes(key_buf), bytes(val_buf)))
        encoded_pairs.sort()
        _head_into(out, _MT_MAP, len(value))
        for key_bytes, val_bytes in encoded_pairs:
            out += key_bytes
            out += val_bytes
    elif isinstance(value, Tag):
        _head_into(out, _MT_TAG, value.number)
        dump_into(out, value.value)
    elif isinstance(value, Simple):
        if value.value < 24:
            out.append((_MT_SIMPLE << 5) | value.value)
        else:
            out.append((_MT_SIMPLE << 5) | 24)
            out.append(value.value)
    else:
        raise CBOREncodeError(f"cannot encode {type(value).__name__} in CBOR")


def dumps(value: Any) -> bytes:
    """Serialise *value* to deterministic CBOR bytes.

    Raises
    ------
    CBOREncodeError
        If the value (or a nested element) has no CBOR representation.
    """
    out = bytearray()
    dump_into(out, value)
    return bytes(out)
