"""Deterministic CBOR encoding (RFC 8949 §4.2 core requirements).

Integers use the shortest form, map keys are sorted bytewise by their
encoded form, and indefinite-length items are never produced.
"""

from __future__ import annotations

import math
import struct
from typing import Any

from .types import Simple, Tag

_MT_UNSIGNED = 0
_MT_NEGATIVE = 1
_MT_BYTES = 2
_MT_TEXT = 3
_MT_ARRAY = 4
_MT_MAP = 5
_MT_TAG = 6
_MT_SIMPLE = 7


class CBOREncodeError(ValueError):
    """Raised when a value cannot be represented in CBOR."""


def _head(major: int, argument: int) -> bytes:
    """Encode the initial byte(s): major type plus shortest-form argument."""
    if argument < 0:
        raise CBOREncodeError("argument must be non-negative")
    mt = major << 5
    if argument < 24:
        return bytes([mt | argument])
    if argument < 0x100:
        return bytes([mt | 24, argument])
    if argument < 0x10000:
        return bytes([mt | 25]) + argument.to_bytes(2, "big")
    if argument < 0x100000000:
        return bytes([mt | 26]) + argument.to_bytes(4, "big")
    if argument < 0x10000000000000000:
        return bytes([mt | 27]) + argument.to_bytes(8, "big")
    raise CBOREncodeError("integer too large for CBOR head")


def _encode_int(value: int) -> bytes:
    if value >= 0:
        return _head(_MT_UNSIGNED, value)
    return _head(_MT_NEGATIVE, -1 - value)


def _encode_float(value: float) -> bytes:
    # Deterministic encoding: use the shortest float representation that
    # round-trips. Half precision is attempted first, then single.
    if math.isnan(value):
        return b"\xf9\x7e\x00"
    try:
        half = struct.pack(">e", value)
        if struct.unpack(">e", half)[0] == value:
            return b"\xf9" + half
    except (OverflowError, struct.error):
        pass
    try:
        single = struct.pack(">f", value)
        if struct.unpack(">f", single)[0] == value:
            return b"\xfa" + single
    except (OverflowError, struct.error):
        pass
    return b"\xfb" + struct.pack(">d", value)


def _encode(value: Any) -> bytes:
    if value is False:
        return b"\xf4"
    if value is True:
        return b"\xf5"
    if value is None:
        return b"\xf6"
    if isinstance(value, int):
        return _encode_int(value)
    if isinstance(value, float):
        return _encode_float(value)
    if isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        return _head(_MT_BYTES, len(data)) + data
    if isinstance(value, str):
        data = value.encode("utf-8")
        return _head(_MT_TEXT, len(data)) + data
    if isinstance(value, (list, tuple)):
        out = [_head(_MT_ARRAY, len(value))]
        out.extend(_encode(item) for item in value)
        return b"".join(out)
    if isinstance(value, dict):
        encoded_pairs = sorted(
            (_encode(k), _encode(v)) for k, v in value.items()
        )
        out = [_head(_MT_MAP, len(value))]
        for key, val in encoded_pairs:
            out.append(key)
            out.append(val)
        return b"".join(out)
    if isinstance(value, Tag):
        return _head(_MT_TAG, value.number) + _encode(value.value)
    if isinstance(value, Simple):
        if value.value < 24:
            return bytes([(_MT_SIMPLE << 5) | value.value])
        return bytes([(_MT_SIMPLE << 5) | 24, value.value])
    raise CBOREncodeError(f"cannot encode {type(value).__name__} in CBOR")


def dumps(value: Any) -> bytes:
    """Serialise *value* to deterministic CBOR bytes.

    Raises
    ------
    CBOREncodeError
        If the value (or a nested element) has no CBOR representation.
    """
    return _encode(value)
