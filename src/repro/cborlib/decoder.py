"""CBOR decoding (RFC 8949), including indefinite-length items."""

from __future__ import annotations

import struct
from typing import Any, Tuple

from repro.net.buffers import BufReader, Buffer
from .types import Simple, Tag

_BREAK = object()


class CBORDecodeError(ValueError):
    """Raised on malformed or truncated CBOR input."""


class _Decoder(BufReader):
    """A :class:`BufReader` walking CBOR items in place.

    The input buffer (``bytes`` or ``memoryview``) is never copied as a
    whole and never mutated; byte/text strings are materialised exactly
    once when they become decoded values.
    """

    __slots__ = ()

    def __init__(self, data: Buffer) -> None:
        super().__init__(data, error=CBORDecodeError)

    def _argument(self, info: int) -> int:
        if info < 24:
            return info
        if info == 24:
            return self.u8()
        if info == 25:
            return self.u16()
        if info == 26:
            return self.u32()
        if info == 27:
            return self.u64()
        raise CBORDecodeError(f"reserved additional info {info}")

    def decode_item(self, allow_break: bool = False) -> Any:
        initial = self.u8()
        major, info = initial >> 5, initial & 0x1F

        if initial == 0xFF:
            if allow_break:
                return _BREAK
            raise CBORDecodeError("unexpected break code")

        if major == 0:
            return self._argument(info)
        if major == 1:
            return -1 - self._argument(info)
        if major == 2:
            return self._decode_string(info, text=False)
        if major == 3:
            return self._decode_string(info, text=True)
        if major == 4:
            return self._decode_array(info)
        if major == 5:
            return self._decode_map(info)
        if major == 6:
            return Tag(self._argument(info), self.decode_item())
        return self._decode_simple(info)

    def _decode_string(self, info: int, text: bool) -> Any:
        if info == 31:  # indefinite length: concatenation of definite chunks
            chunks = []
            while True:
                initial = self.u8()
                if initial == 0xFF:
                    break
                major, chunk_info = initial >> 5, initial & 0x1F
                expected = 3 if text else 2
                if major != expected or chunk_info == 31:
                    raise CBORDecodeError("invalid indefinite string chunk")
                chunks.append(self.take(self._argument(chunk_info)))
            data = b"".join(chunks)
        else:
            data = self.take(self._argument(info))
        if text:
            try:
                return str(data, "utf-8")
            except UnicodeDecodeError as exc:
                raise CBORDecodeError("invalid UTF-8 in text string") from exc
        return bytes(data)

    def _decode_array(self, info: int) -> list:
        if info == 31:
            items = []
            while True:
                item = self.decode_item(allow_break=True)
                if item is _BREAK:
                    return items
                items.append(item)
        return [self.decode_item() for _ in range(self._argument(info))]

    def _decode_map(self, info: int) -> dict:
        result: dict = {}

        def add(key: Any, value: Any) -> None:
            # A Tag is hashable only if its value is (frozen dataclass
            # hashing descends into the fields), so the isinstance
            # check alone cannot reject e.g. Tag(0, {}) keys.
            try:
                result[key] = value
            except TypeError:
                raise CBORDecodeError("unhashable map key") from None

        if info == 31:
            while True:
                key = self.decode_item(allow_break=True)
                if key is _BREAK:
                    return result
                add(key, self.decode_item())
        for _ in range(self._argument(info)):
            key = self.decode_item()
            add(key, self.decode_item())
        return result

    def _decode_simple(self, info: int) -> Any:
        if info == 20:
            return False
        if info == 21:
            return True
        if info == 22:
            return None
        if info == 23:
            return Simple(23)
        if info == 24:
            value = self.u8()
            if value < 32:
                raise CBORDecodeError("invalid two-byte simple value")
            return Simple(value)
        if info == 25:
            return struct.unpack(">e", self.take(2))[0]
        if info == 26:
            return struct.unpack(">f", self.take(4))[0]
        if info == 27:
            return struct.unpack(">d", self.take(8))[0]
        if info < 20:
            return Simple(info)
        raise CBORDecodeError(f"invalid simple/float info {info}")


def loads(data: Buffer) -> Any:
    """Decode a single CBOR item, requiring all input to be consumed.

    Accepts ``bytes | memoryview`` and parses in place — no whole-input
    copy is made, and the input is never mutated.
    """
    decoder = _Decoder(data)
    value = decoder.decode_item()
    if decoder.pos != len(data):
        raise CBORDecodeError(
            f"{len(data) - decoder.pos} trailing bytes after CBOR item"
        )
    return value


def loads_prefix(data: Buffer) -> Tuple[Any, int]:
    """Decode one CBOR item from the front of *data*.

    Returns the decoded value and the number of bytes consumed, allowing
    streams of concatenated CBOR items to be processed.
    """
    decoder = _Decoder(data)
    value = decoder.decode_item()
    return value, decoder.pos
