"""The OSCORE option value codec (RFC 8613 §6.1).

Layout: one flag byte, then the Partial IV (0-5 bytes, length in the
low 3 flag bits), optionally a kid-context (length-prefixed, flag bit
4), optionally the kid (remaining bytes, flag bit 3). An all-defaults
value encodes as the empty string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .context import OscoreError


@dataclass(frozen=True)
class OscoreOptionValue:
    """Decoded contents of the OSCORE option."""

    partial_iv: bytes = b""
    kid: Optional[bytes] = None
    kid_context: Optional[bytes] = None

    def encode(self) -> bytes:
        if len(self.partial_iv) > 5:
            raise OscoreError("Partial IV longer than 5 bytes")
        flags = len(self.partial_iv)
        out = bytearray()
        if self.kid_context is not None:
            flags |= 0x10
        if self.kid is not None:
            flags |= 0x08
        if flags == 0:
            return b""
        out.append(flags)
        out += self.partial_iv
        if self.kid_context is not None:
            if len(self.kid_context) > 255:
                raise OscoreError("kid context too long")
            out.append(len(self.kid_context))
            out += self.kid_context
        if self.kid is not None:
            out += self.kid
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "OscoreOptionValue":
        if not data:
            return cls()
        flags = data[0]
        if flags & 0xE0:
            raise OscoreError("reserved OSCORE option flag bits set")
        piv_length = flags & 0x07
        if piv_length > 5:
            raise OscoreError("invalid Partial IV length")
        offset = 1
        if offset + piv_length > len(data):
            raise OscoreError("truncated Partial IV")
        partial_iv = bytes(data[offset : offset + piv_length])
        offset += piv_length
        kid_context: Optional[bytes] = None
        if flags & 0x10:
            if offset >= len(data):
                raise OscoreError("truncated kid context length")
            ctx_length = data[offset]
            offset += 1
            if offset + ctx_length > len(data):
                raise OscoreError("truncated kid context")
            kid_context = bytes(data[offset : offset + ctx_length])
            offset += ctx_length
        kid: Optional[bytes] = None
        if flags & 0x08:
            kid = bytes(data[offset:])
        elif offset != len(data):
            raise OscoreError("trailing bytes without kid flag")
        return cls(partial_iv=partial_iv, kid=kid, kid_context=kid_context)
