"""OSCORE message protection and verification (RFC 8613 §8).

The transformation:

* **inner (plaintext)** — the real code, the Class-E options, and the
  payload, serialised as ``code || options || 0xFF payload``;
* **outer** — a new CoAP message exposing only Class-U options (proxy
  routing options, and the OSCORE option itself); its code is POST for
  requests and 2.04 Changed for responses, hiding the real semantics;
* **COSE_Encrypt0** — the inner bytes encrypted with AES-CCM under the
  RFC 8613 §5.4 AAD; the raw ciphertext is the outer payload.

Responses reuse the request's nonce (no Partial IV on the wire) unless
``use_new_piv`` is set — the size difference is visible in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from repro.cborlib import dumps
from repro.coap.codes import CODE_BY_VALUE, Code
from repro.crypto import AEADError
from repro.coap.message import CoapMessage, MessageType
from repro.coap.options import OptionNumber, decode_options, encode_options

from .context import (
    AES_CCM_16_64_128_ALG,
    OscoreError,
    SecurityContext,
    decode_partial_iv,
    encode_partial_iv,
)
from .option import OscoreOptionValue

#: Options processed by proxies, therefore visible on the outer message
#: (Class U, RFC 8613 §4.1.2).
_CLASS_U = frozenset(
    {
        OptionNumber.URI_HOST,
        OptionNumber.URI_PORT,
        OptionNumber.PROXY_URI,
        OptionNumber.PROXY_SCHEME,
    }
)


@dataclass(frozen=True)
class RequestBinding:
    """The (kid, Partial IV) pair binding a response to its request."""

    kid: bytes
    partial_iv: bytes


def _split_options(message: CoapMessage) -> Tuple[list, list]:
    """Partition options into (outer/Class-U, inner/Class-E)."""
    outer, inner = [], []
    for number, value in message.options:
        if number in _CLASS_U:
            outer.append((number, value))
        else:
            inner.append((number, value))
    return outer, inner


def _plaintext(code: Code, inner_options: list, payload: bytes) -> bytes:
    out = bytearray([int(code)])
    out += encode_options(inner_options)
    if payload:
        out += b"\xff" + payload
    return bytes(out)


def _parse_plaintext(data: bytes) -> Tuple[Code, tuple, bytes]:
    if not data:
        raise OscoreError("empty OSCORE plaintext")
    code = CODE_BY_VALUE.get(data[0])
    if code is None:
        raise OscoreError(f"invalid inner code 0x{data[0]:02x}")
    options, payload_offset = decode_options(data, 1)
    return code, tuple(options), bytes(data[payload_offset:])


@lru_cache(maxsize=4096)
def _external_aad(request_kid: bytes, request_piv: bytes) -> bytes:
    """RFC 8613 §5.4 external_aad (I options empty, single algorithm).

    A pure function of (kid, Partial IV), and every exchange needs it
    twice (seal and open) — memoised to skip the repeated CBOR encode.
    """
    external = dumps(
        [1, [AES_CCM_16_64_128_ALG], request_kid, request_piv, b""]
    )
    return dumps(["Encrypt0", b"", external])


def protect_request(
    context: SecurityContext, request: CoapMessage,
    outer_code: Code = Code.POST,
) -> Tuple[CoapMessage, RequestBinding]:
    """Encrypt *request*; returns the outer message and the binding
    needed to verify/produce the matching response.

    ``outer_code`` is POST per RFC 8613 §4.1.3.5; cacheable OSCORE uses
    FETCH so proxies may cache the protected exchange.
    """
    if not request.code.is_request:
        raise OscoreError("protect_request needs a request")
    sequence = context.next_sequence()
    partial_iv = encode_partial_iv(sequence)
    outer_options, inner_options = _split_options(request)

    plaintext = _plaintext(request.code, inner_options, request.payload)
    nonce = context.nonce(context.sender_id, partial_iv)
    aad = _external_aad(context.sender_id, partial_iv)
    ciphertext = context.sender_aead().encrypt(nonce, plaintext, aad)

    option_value = OscoreOptionValue(
        partial_iv=partial_iv, kid=context.sender_id,
        kid_context=context.context_id,
    )
    outer = CoapMessage(
        mtype=request.mtype,
        code=outer_code,
        mid=request.mid,
        token=request.token,
        options=tuple(outer_options)
        + ((OptionNumber.OSCORE, option_value.encode()),),
        payload=ciphertext,
    )
    return outer, RequestBinding(context.sender_id, partial_iv)


def unprotect_request(
    context: SecurityContext, outer: CoapMessage, enforce_replay: bool = True
) -> Tuple[CoapMessage, RequestBinding]:
    """Verify and decrypt an incoming protected request."""
    option_data = outer.option(OptionNumber.OSCORE)
    if option_data is None:
        raise OscoreError("missing OSCORE option")
    value = OscoreOptionValue.decode(option_data)
    if value.kid is None:
        raise OscoreError("request without kid")
    if value.kid != context.recipient_id:
        raise OscoreError(
            f"unknown kid {value.kid!r} (expected {context.recipient_id!r})"
        )
    sequence = decode_partial_iv(value.partial_iv)
    if enforce_replay and not context.replay_window.check(sequence):
        raise OscoreError(f"replayed Partial IV {sequence}")

    nonce = context.nonce(value.kid, value.partial_iv)
    aad = _external_aad(value.kid, value.partial_iv)
    try:
        plaintext = context.recipient_aead().decrypt(nonce, outer.payload, aad)
    except AEADError as exc:
        raise OscoreError("request authentication failed") from exc
    if enforce_replay:
        context.replay_window.accept(sequence)

    code, inner_options, payload = _parse_plaintext(plaintext)
    if not code.is_request:
        raise OscoreError("inner message is not a request")
    outer_options = tuple(
        (n, v) for n, v in outer.options if n in _CLASS_U
    )
    request = CoapMessage(
        mtype=outer.mtype,
        code=code,
        mid=outer.mid,
        token=outer.token,
        options=outer_options + inner_options,
        payload=payload,
    )
    return request, RequestBinding(value.kid, value.partial_iv)


def protect_response(
    context: SecurityContext,
    response: CoapMessage,
    binding: RequestBinding,
    use_new_piv: bool = False,
    outer_code: Code = Code.CHANGED,
    outer_options: Tuple[Tuple[int, bytes], ...] = (),
) -> CoapMessage:
    """Encrypt *response* bound to the request identified by *binding*.

    By default the request's nonce is reused (no Partial IV on the
    wire); ``use_new_piv`` switches to a fresh sender sequence number,
    required e.g. for multiple responses to one request.
    """
    if not response.code.is_response:
        raise OscoreError("protect_response needs a response")
    outer_class_u, inner_options = _split_options(response)
    plaintext = _plaintext(response.code, inner_options, response.payload)
    aad = _external_aad(binding.kid, binding.partial_iv)

    if use_new_piv:
        partial_iv = encode_partial_iv(context.next_sequence())
        nonce = context.nonce(context.sender_id, partial_iv)
        option_value = OscoreOptionValue(partial_iv=partial_iv)
    else:
        nonce = context.nonce(binding.kid, binding.partial_iv)
        option_value = OscoreOptionValue()

    ciphertext = context.sender_aead().encrypt(nonce, plaintext, aad)
    return CoapMessage(
        mtype=response.mtype,
        code=outer_code,
        mid=response.mid,
        token=response.token,
        options=tuple(outer_class_u) + tuple(outer_options)
        + ((OptionNumber.OSCORE, option_value.encode()),),
        payload=ciphertext,
    )


def unprotect_response(
    context: SecurityContext, outer: CoapMessage, binding: RequestBinding
) -> CoapMessage:
    """Verify and decrypt a protected response for our request."""
    option_data = outer.option(OptionNumber.OSCORE)
    if option_data is None:
        raise OscoreError("missing OSCORE option")
    value = OscoreOptionValue.decode(option_data)
    aad = _external_aad(binding.kid, binding.partial_iv)
    if value.partial_iv:
        nonce = context.nonce(context.recipient_id, value.partial_iv)
    else:
        nonce = context.nonce(binding.kid, binding.partial_iv)
    try:
        plaintext = context.recipient_aead().decrypt(nonce, outer.payload, aad)
    except AEADError as exc:
        raise OscoreError("response authentication failed") from exc
    code, inner_options, payload = _parse_plaintext(plaintext)
    if not code.is_response:
        raise OscoreError("inner message is not a response")
    outer_options = tuple((n, v) for n, v in outer.options if n in _CLASS_U)
    return CoapMessage(
        mtype=outer.mtype,
        code=code,
        mid=outer.mid,
        token=outer.token,
        options=outer_options + inner_options,
        payload=payload,
    )
