"""OSCORE security contexts and replay protection (RFC 8613 §3, §7.4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cborlib import dumps
from repro.crypto import AES_CCM_16_64_128, hkdf_sha256

#: COSE algorithm identifier for AES-CCM-16-64-128 (RFC 8152 §10.2).
AES_CCM_16_64_128_ALG = 10

_KEY_LENGTH = 16
_NONCE_LENGTH = 13


class OscoreError(Exception):
    """Raised on OSCORE processing failures."""


class ReplayError(OscoreError):
    """Raised when an incoming Partial IV fails replay validation."""


def _derive(
    master_secret: bytes,
    master_salt: bytes,
    context_id: Optional[bytes],
    role_id: bytes,
    type_label: str,
    length: int,
) -> bytes:
    """RFC 8613 §3.2.1: HKDF with a CBOR ``info`` structure."""
    info = dumps(
        [
            role_id,
            context_id,
            AES_CCM_16_64_128_ALG,
            type_label,
            length,
        ]
    )
    return hkdf_sha256(master_salt, master_secret, info, length)


class ReplayWindow:
    """Sliding anti-replay window over Partial IVs (RFC 8613 §7.4).

    The paper enlarges this window for its long runs to avoid mid-run
    re-initialisations; ``size`` is therefore configurable.
    """

    def __init__(self, size: int = 32) -> None:
        if size < 1:
            raise ValueError("window size must be positive")
        self.size = size
        self._highest = -1
        self._bitmap = 0

    def check(self, sequence: int) -> bool:
        """True if *sequence* would be accepted (no state change)."""
        if sequence < 0:
            return False
        if sequence > self._highest:
            return True
        offset = self._highest - sequence
        if offset >= self.size:
            return False
        return not (self._bitmap >> offset) & 1

    def accept(self, sequence: int) -> None:
        """Record *sequence* as seen.

        Raises
        ------
        ReplayError
            If the sequence number is a replay or too old.
        """
        if not self.check(sequence):
            raise ReplayError(f"replayed or stale Partial IV {sequence}")
        if sequence > self._highest:
            shift = sequence - self._highest
            self._bitmap = ((self._bitmap << shift) | 1) & ((1 << self.size) - 1)
            self._highest = sequence
        else:
            self._bitmap |= 1 << (self._highest - sequence)

    @property
    def highest_seen(self) -> int:
        return self._highest


@dataclass
class SecurityContext:
    """One endpoint's OSCORE security context.

    Create matching client/server contexts with :meth:`pair` — the
    experiments pre-establish these, mirroring the paper's pre-shared
    key setup (9-byte PSK, Section 5.1).
    """

    sender_id: bytes
    recipient_id: bytes
    sender_key: bytes
    recipient_key: bytes
    common_iv: bytes
    context_id: Optional[bytes] = None
    replay_window: ReplayWindow = field(default_factory=ReplayWindow)
    sender_sequence: int = 0
    #: Set on servers that require an Echo round before accepting
    #: requests (replay-window initialisation, RFC 8613 appendix B.1.2).
    echo_required: bool = False

    @classmethod
    def derive(
        cls,
        master_secret: bytes,
        master_salt: bytes,
        sender_id: bytes,
        recipient_id: bytes,
        context_id: Optional[bytes] = None,
        replay_window_size: int = 32,
        echo_required: bool = False,
    ) -> "SecurityContext":
        """Derive keys and common IV from the master secret (RFC 8613 §3.2)."""
        if sender_id == recipient_id:
            raise OscoreError("sender and recipient IDs must differ")
        return cls(
            sender_id=sender_id,
            recipient_id=recipient_id,
            sender_key=_derive(
                master_secret, master_salt, context_id, sender_id, "Key", _KEY_LENGTH
            ),
            recipient_key=_derive(
                master_secret, master_salt, context_id, recipient_id, "Key", _KEY_LENGTH
            ),
            common_iv=_derive(
                master_secret, master_salt, context_id, b"", "IV", _NONCE_LENGTH
            ),
            context_id=context_id,
            replay_window=ReplayWindow(replay_window_size),
            echo_required=echo_required,
        )

    @classmethod
    def pair(
        cls,
        master_secret: bytes,
        master_salt: bytes = b"",
        client_id: bytes = b"\x01",
        server_id: bytes = b"\x02",
        replay_window_size: int = 32,
        server_requires_echo: bool = False,
    ) -> tuple:
        """Derive a matching (client_context, server_context) pair."""
        client = cls.derive(
            master_secret, master_salt, client_id, server_id,
            replay_window_size=replay_window_size,
        )
        server = cls.derive(
            master_secret, master_salt, server_id, client_id,
            replay_window_size=replay_window_size,
            echo_required=server_requires_echo,
        )
        return client, server

    # -- AEAD plumbing -----------------------------------------------------

    def next_sequence(self) -> int:
        """Consume and return the next sender sequence number."""
        value = self.sender_sequence
        self.sender_sequence += 1
        return value

    def nonce(self, piv_id: bytes, partial_iv: bytes) -> bytes:
        """RFC 8613 §5.2 nonce: pad, concatenate, XOR with Common IV."""
        if len(piv_id) > _NONCE_LENGTH - 6:
            raise OscoreError("ID too long for nonce construction")
        padded_id = piv_id.rjust(_NONCE_LENGTH - 6, b"\x00")
        padded_piv = partial_iv.rjust(5, b"\x00")
        plain = bytes([len(piv_id)]) + padded_id + padded_piv
        return (
            int.from_bytes(plain, "big")
            ^ int.from_bytes(self.common_iv, "big")
        ).to_bytes(_NONCE_LENGTH, "big")

    def sender_aead(self):
        return AES_CCM_16_64_128(self.sender_key)

    def recipient_aead(self):
        return AES_CCM_16_64_128(self.recipient_key)


def encode_partial_iv(sequence: int) -> bytes:
    """Minimal-length big-endian Partial IV (RFC 8613 §6.1)."""
    if sequence < 0:
        raise OscoreError("sequence must be non-negative")
    if sequence == 0:
        return b"\x00"
    return sequence.to_bytes((sequence.bit_length() + 7) // 8, "big")


def decode_partial_iv(piv: bytes) -> int:
    return int.from_bytes(piv, "big")
