"""Cacheable OSCORE: deterministic requests for en-route caching.

Implements the mechanism of draft-amsuess-core-cachable-oscore (cited
as the OSCORE add-on "currently discussed" in Section 4.3, and the
basis of Table 1's unique OSCORE feature, content-secure en-route
caching):

* A group of clients shares a *deterministic client* context whose key
  is derived from the group's secret with a fixed ID. Instead of a
  monotonic Partial IV, a deterministic request derives its Partial IV
  from a **hash of the request plaintext** (hash-based nonce), so equal
  queries produce byte-identical protected messages.
* Replay protection is deliberately waived for this context — safe
  only for side-effect-free, idempotent requests such as DNS FETCHes
  (the draft's intended use).
* Responses are bound to the deterministic request's (kid, PIV) just
  like normal OSCORE responses, so an untrusted proxy can cache the
  *ciphertext* response keyed on the ciphertext request and serve it to
  any group member without being able to read either.

With DoC this closes the loop of the paper's Section 4.2 ID-zeroing:
the DNS ID is already 0, the FETCH payload is deterministic, and with a
deterministic security context even the *protected* request bytes are
stable, so OSCORE no longer defeats proxy caching.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from repro.coap.message import CoapMessage

from .context import OscoreError, SecurityContext, encode_partial_iv
from .protect import (
    RequestBinding,
    protect_request,
    unprotect_request,
)

#: Reserved sender ID of the deterministic client (draft §3.1 uses a
#: dedicated, well-known ID within the group).
DETERMINISTIC_CLIENT_ID = b"\xDC"


class CiphertextCache:
    """Proxy-side cache of *protected* responses to deterministic requests.

    The en-route caching of Table 1: an untrusted proxy keys on the
    deterministic request's ciphertext (byte-identical across group
    members) and serves the protected response without being able to
    read either side. A thin adapter over
    :class:`repro.cache.KeyedCache` — the domain contribution is the
    key (only OSCORE-protected outer FETCHes are shareable) and the
    lifetime (the *outer* Max-Age that
    :func:`protect_cacheable_response` exposes for exactly this
    purpose).
    """

    def __init__(self, capacity: int = 50) -> None:
        from repro.cache import EvictionPolicy, KeyedCache

        self._store = KeyedCache(
            capacity, policy=EvictionPolicy.EXPIRED_FIRST, keep_stale=False
        )
        self.stats = self._store.stats

    def __len__(self) -> int:
        return len(self._store)

    @property
    def capacity(self) -> int:
        return self._store.capacity

    @staticmethod
    def key_for(outer_request: CoapMessage):
        """Cache key for a protected request, or ``None`` if unshareable.

        Only deterministic requests may be served from a shared cache;
        they are recognisable as outer FETCHes carrying an OSCORE
        option (a normal OSCORE request has a fresh Partial IV, so its
        ciphertext never repeats and caching it is pointless).
        """
        from repro.coap.cache import cache_key_for
        from repro.coap.codes import Code
        from repro.coap.options import OptionNumber

        if outer_request.code != Code.FETCH:
            return None
        if outer_request.option(OptionNumber.OSCORE) is None:
            return None
        return cache_key_for(outer_request)

    def lookup(self, outer_request: CoapMessage, now: float) -> Optional[CoapMessage]:
        """The cached protected response, aged, or ``None``."""
        from repro.cache import LookupState
        from repro.coap.options import OptionNumber

        key = self.key_for(outer_request)
        if key is None:
            return None
        entry, state = self._store.lookup(key, now)
        if state is not LookupState.HIT:
            return None
        return entry.value.replace_uint_option(
            OptionNumber.MAX_AGE, entry.remaining(now)
        )

    def store(
        self, outer_request: CoapMessage, outer_response: CoapMessage, now: float
    ) -> bool:
        """Cache *outer_response* if the exchange is cacheable.

        The lifetime is the outer Max-Age; a protected response without
        one gives the proxy no freshness information, so it is not
        cached (the draft requires the server to expose it).
        """
        key = self.key_for(outer_request)
        if key is None or not outer_response.code.is_success:
            return False
        max_age = outer_response.max_age
        if max_age is None or max_age <= 0:
            return False
        self._store.store(key, outer_response, max_age, now)
        return True

    def expire(self, now: float) -> int:
        return self._store.expire(now)

    def clear(self) -> None:
        self._store.clear()

#: Length of the hash-derived Partial IV.
_DET_PIV_LENGTH = 5


def derive_deterministic_context(
    master_secret: bytes,
    master_salt: bytes = b"",
    server_id: bytes = b"\x02",
    role: str = "client",
) -> SecurityContext:
    """Derive the shared deterministic-client context.

    Every group member derives the same context (same sender key), so
    any of them can produce — and any of them can decrypt responses
    to — the same protected request bytes.
    """
    if role == "client":
        context = SecurityContext.derive(
            master_secret, master_salt, DETERMINISTIC_CLIENT_ID, server_id
        )
    elif role == "server":
        context = SecurityContext.derive(
            master_secret, master_salt, server_id, DETERMINISTIC_CLIENT_ID
        )
    else:
        raise ValueError("role must be 'client' or 'server'")
    return context


def _deterministic_piv(context, request: CoapMessage) -> int:
    """Hash-based Partial IV over the *encrypted* (Class-E) parts of the
    request (draft §3.2). Class-U options travel outside the ciphertext
    and therefore must not enter the hash."""
    from .protect import _CLASS_U

    digest = hashlib.sha256()
    digest.update(context.sender_key)
    digest.update(bytes([int(request.code)]))
    for number, value in sorted(request.options):
        if number in _CLASS_U:
            continue
        digest.update(number.to_bytes(4, "big"))
        digest.update(len(value).to_bytes(2, "big"))
        digest.update(value)
    digest.update(request.payload)
    return int.from_bytes(digest.digest()[:_DET_PIV_LENGTH], "big")


def protect_deterministic_request(
    context: SecurityContext, request: CoapMessage
) -> Tuple[CoapMessage, RequestBinding]:
    """Protect *request* deterministically.

    Identical requests yield identical outer messages (up to the CoAP
    header fields the message layer rewrites), making the result
    cacheable by DoC-agnostic proxies.
    """
    if context.sender_id != DETERMINISTIC_CLIENT_ID:
        raise OscoreError("not a deterministic-client context")
    piv_value = _deterministic_piv(context, request)
    # Temporarily pin the sender sequence so protect_request emits the
    # hash-derived PIV; restore afterwards (the counter is unused here).
    saved_sequence = context.sender_sequence
    context.sender_sequence = piv_value
    try:
        outer, binding = protect_request(context, request)
    finally:
        context.sender_sequence = saved_sequence
    return outer, binding


def unprotect_deterministic_request(
    context: SecurityContext, outer: CoapMessage
) -> Tuple[CoapMessage, RequestBinding]:
    """Server side: decrypt and *verify* the deterministic PIV.

    Replay checking is disabled (equal requests are the point), but the
    server recomputes the hash-based PIV from the decrypted plaintext
    and rejects mismatches, preventing nonce-forcing games.
    """
    inner, binding = unprotect_request(context, outer, enforce_replay=False)
    expected = _deterministic_piv(
        # The *client's* sender key is this server context's recipient key.
        _recipient_view(context),
        inner_without_outer_options(inner),
    )
    if binding.partial_iv != encode_partial_iv(expected):
        raise OscoreError("deterministic Partial IV mismatch")
    return inner, binding


class _KeyView:
    """Minimal object exposing ``sender_key`` for the PIV recompute."""

    def __init__(self, key: bytes) -> None:
        self.sender_key = key


def _recipient_view(server_context: SecurityContext) -> "_KeyView":
    return _KeyView(server_context.recipient_key)


def inner_without_outer_options(inner: CoapMessage) -> CoapMessage:
    """Strip Class-U options re-attached during unprotect, recovering
    the exact message the client hashed."""
    from .protect import _CLASS_U

    filtered = tuple(
        (number, value)
        for number, value in inner.options
        if number not in _CLASS_U
    )
    from dataclasses import replace

    return replace(inner, options=filtered)


def protect_cacheable_request(
    context: SecurityContext, request: CoapMessage
) -> Tuple[CoapMessage, RequestBinding]:
    """Deterministic protection with an outer FETCH (draft §3.3).

    The outer FETCH makes the protected exchange cacheable at
    DoC-agnostic proxies: the cache key covers the (deterministic)
    ciphertext payload, so equal queries hit equal entries.
    """
    from repro.coap.codes import Code

    if context.sender_id != DETERMINISTIC_CLIENT_ID:
        raise OscoreError("not a deterministic-client context")
    piv_value = _deterministic_piv(context, request)
    saved_sequence = context.sender_sequence
    context.sender_sequence = piv_value
    try:
        outer, binding = protect_request(
            context, request, outer_code=Code.FETCH
        )
    finally:
        context.sender_sequence = saved_sequence
    return outer, binding


def protect_cacheable_response(
    context: SecurityContext,
    response: CoapMessage,
    binding: RequestBinding,
    outer_max_age: Optional[int] = None,
) -> CoapMessage:
    """Protect a response to a deterministic request for proxy caching.

    The outer code is 2.05 Content (cacheable, unlike 2.04) and the
    freshness lifetime is exposed as an *outer* Max-Age option so that
    proxies can age the entry — the Section 7 discussion notes the
    integrity limits of this outer option; see
    :func:`repro.doc.integrity.check_max_age_consistency` for the
    proposed client-side mitigation.
    """
    from repro.coap.codes import Code
    from repro.coap.options import OptionNumber, encode_uint
    from .protect import protect_response

    outer_options: Tuple[Tuple[int, bytes], ...] = ()
    if outer_max_age is not None:
        outer_options = (
            (int(OptionNumber.MAX_AGE), encode_uint(outer_max_age)),
        )
    return protect_response(
        context,
        response,
        binding,
        outer_code=Code.CONTENT,
        outer_options=outer_options,
    )
