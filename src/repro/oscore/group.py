"""Group OSCORE (draft-ietf-core-oscore-groupcomm, simplified).

Section 7 of the paper ("How to utilize OSCORE group communication in
DNS?") motivates protected multicast DNS-SD; Section 8 names DoC over
Group OSCORE as future work. This module implements the *group mode*
message processing needed for that experiment:

* all members share a group master secret; each member's sender key is
  derived from it with the member ID in the HKDF info, so any member
  can derive any other member's key on demand and verify/decrypt that
  member's messages;
* requests are multicast: the OSCORE option carries the sender's kid
  and the group ID as kid-context;
* each responder answers with its **own** kid and a **fresh Partial
  IV** (multiple responses to one request must not share a nonce);
* replay windows are kept per sender.

The draft's countersignatures (source authentication against *inner*
group members) require Ed25519 and are out of scope; this is the
"pairwise-trust group" reduction, which preserves all sizes except the
signature and all message flows. The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cborlib import dumps
from repro.coap.codes import Code
from repro.coap.message import CoapMessage
from repro.crypto import AEADError, AES_CCM_16_64_128, hkdf_sha256

from .context import (
    AES_CCM_16_64_128_ALG,
    OscoreError,
    ReplayWindow,
    encode_partial_iv,
    decode_partial_iv,
)
from .option import OscoreOptionValue
from .protect import RequestBinding, _parse_plaintext, _plaintext, _split_options

_KEY_LENGTH = 16
_NONCE_LENGTH = 13


@dataclass
class GroupContext:
    """One member's view of a Group OSCORE security group."""

    group_id: bytes
    member_id: bytes
    master_secret: bytes
    master_salt: bytes = b""
    common_iv: bytes = field(init=False)
    sender_sequence: int = 0
    _replay: Dict[bytes, ReplayWindow] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.common_iv = hkdf_sha256(
            self.master_salt,
            self.master_secret,
            dumps([self.group_id, None, AES_CCM_16_64_128_ALG, "IV", _NONCE_LENGTH]),
            _NONCE_LENGTH,
        )

    def key_for(self, member_id: bytes) -> bytes:
        """Derive the sender key of *member_id* (any group member can)."""
        return hkdf_sha256(
            self.master_salt,
            self.master_secret,
            dumps([member_id, self.group_id, AES_CCM_16_64_128_ALG, "Key", _KEY_LENGTH]),
            _KEY_LENGTH,
        )

    def nonce(self, piv_id: bytes, partial_iv: bytes) -> bytes:
        if len(piv_id) > _NONCE_LENGTH - 6:
            raise OscoreError("member ID too long for nonce")
        padded_id = piv_id.rjust(_NONCE_LENGTH - 6, b"\x00")
        padded_piv = partial_iv.rjust(5, b"\x00")
        plain = bytes([len(piv_id)]) + padded_id + padded_piv
        return bytes(a ^ b for a, b in zip(plain, self.common_iv))

    def next_sequence(self) -> int:
        value = self.sender_sequence
        self.sender_sequence += 1
        return value

    def replay_window(self, member_id: bytes) -> ReplayWindow:
        window = self._replay.get(member_id)
        if window is None:
            window = ReplayWindow()
            self._replay[member_id] = window
        return window


def _group_aad(
    group_id: bytes, request_kid: bytes, request_piv: bytes
) -> bytes:
    external = dumps(
        [1, [AES_CCM_16_64_128_ALG], request_kid, request_piv, b"", group_id]
    )
    return dumps(["Encrypt0", b"", external])


def protect_group_request(
    context: GroupContext, request: CoapMessage
) -> Tuple[CoapMessage, RequestBinding]:
    """Protect a (typically multicast) group request."""
    if not request.code.is_request:
        raise OscoreError("protect_group_request needs a request")
    partial_iv = encode_partial_iv(context.next_sequence())
    outer_options, inner_options = _split_options(request)
    plaintext = _plaintext(request.code, inner_options, request.payload)
    nonce = context.nonce(context.member_id, partial_iv)
    aad = _group_aad(context.group_id, context.member_id, partial_iv)
    key = context.key_for(context.member_id)
    ciphertext = AES_CCM_16_64_128(key).encrypt(nonce, plaintext, aad)
    option = OscoreOptionValue(
        partial_iv=partial_iv,
        kid=context.member_id,
        kid_context=context.group_id,
    )
    outer = CoapMessage(
        mtype=request.mtype,
        code=Code.POST,
        mid=request.mid,
        token=request.token,
        options=tuple(outer_options)
        + ((9, option.encode()),),  # OSCORE option number
        payload=ciphertext,
    )
    return outer, RequestBinding(context.member_id, partial_iv)


def unprotect_group_request(
    context: GroupContext, outer: CoapMessage
) -> Tuple[CoapMessage, RequestBinding]:
    """Verify/decrypt a group request from any member."""
    from repro.coap.options import OptionNumber

    option_data = outer.option(OptionNumber.OSCORE)
    if option_data is None:
        raise OscoreError("missing OSCORE option")
    value = OscoreOptionValue.decode(option_data)
    if value.kid is None:
        raise OscoreError("group request without kid")
    if value.kid_context != context.group_id:
        raise OscoreError("request for a different group")
    sequence = decode_partial_iv(value.partial_iv)
    window = context.replay_window(value.kid)
    if not window.check(sequence):
        raise OscoreError(f"replayed group request PIV {sequence}")
    nonce = context.nonce(value.kid, value.partial_iv)
    aad = _group_aad(context.group_id, value.kid, value.partial_iv)
    key = context.key_for(value.kid)
    try:
        plaintext = AES_CCM_16_64_128(key).decrypt(nonce, outer.payload, aad)
    except AEADError as exc:
        raise OscoreError("group request authentication failed") from exc
    window.accept(sequence)
    code, inner_options, payload = _parse_plaintext(plaintext)
    if not code.is_request:
        raise OscoreError("inner message is not a request")
    from .protect import _CLASS_U

    outer_options = tuple((n, v) for n, v in outer.options if n in _CLASS_U)
    inner = CoapMessage(
        mtype=outer.mtype,
        code=code,
        mid=outer.mid,
        token=outer.token,
        options=outer_options + inner_options,
        payload=payload,
    )
    return inner, RequestBinding(value.kid, value.partial_iv)


def protect_group_response(
    context: GroupContext, response: CoapMessage, binding: RequestBinding
) -> CoapMessage:
    """Protect one member's response to a group request.

    Responders always use their own kid and a fresh Partial IV: many
    members answer the same request, so nonces must not collide.
    """
    if not response.code.is_response:
        raise OscoreError("protect_group_response needs a response")
    partial_iv = encode_partial_iv(context.next_sequence())
    outer_options, inner_options = _split_options(response)
    plaintext = _plaintext(response.code, inner_options, response.payload)
    nonce = context.nonce(context.member_id, partial_iv)
    aad = _group_aad(context.group_id, binding.kid, binding.partial_iv)
    key = context.key_for(context.member_id)
    ciphertext = AES_CCM_16_64_128(key).encrypt(nonce, plaintext, aad)
    option = OscoreOptionValue(partial_iv=partial_iv, kid=context.member_id)
    return CoapMessage(
        mtype=response.mtype,
        code=Code.CHANGED,
        mid=response.mid,
        token=response.token,
        options=tuple(outer_options) + ((9, option.encode()),),
        payload=ciphertext,
    )


def unprotect_group_response(
    context: GroupContext, outer: CoapMessage, binding: RequestBinding
) -> Tuple[CoapMessage, bytes]:
    """Verify/decrypt a response; returns (message, responder_id)."""
    from repro.coap.options import OptionNumber

    option_data = outer.option(OptionNumber.OSCORE)
    if option_data is None:
        raise OscoreError("missing OSCORE option")
    value = OscoreOptionValue.decode(option_data)
    if value.kid is None:
        raise OscoreError("group response without responder kid")
    nonce = context.nonce(value.kid, value.partial_iv)
    aad = _group_aad(context.group_id, binding.kid, binding.partial_iv)
    key = context.key_for(value.kid)
    try:
        plaintext = AES_CCM_16_64_128(key).decrypt(nonce, outer.payload, aad)
    except AEADError as exc:
        raise OscoreError("group response authentication failed") from exc
    code, inner_options, payload = _parse_plaintext(plaintext)
    if not code.is_response:
        raise OscoreError("inner message is not a response")
    message = CoapMessage(
        mtype=outer.mtype,
        code=code,
        mid=outer.mid,
        token=outer.token,
        options=inner_options,
        payload=payload,
    )
    return message, value.kid
