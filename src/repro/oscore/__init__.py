"""OSCORE — Object Security for Constrained RESTful Environments
(RFC 8613).

OSCORE protects the *CoAP message itself* rather than the transport:
the request/response code, the Class-E options, and the payload are
encrypted into a COSE_Encrypt0 object carried as the payload of an
outer CoAP message, with the OSCORE option conveying the Partial IV and
key identifiers. This is what lets DoC responses

* stay protected end-to-end across untrusted proxies/gateways, and
* (with the cacheable-OSCORE extension) even be cached en route —
  the paper's Table 1 row "Content Secure En-route Caching".

Implemented: security-context derivation via HKDF-SHA256, the OSCORE
option codec, request/response protect/unprotect with the RFC 8613 §5
AAD and nonce constructions, the anti-replay window, and the Echo
option exchange (RFC 9175) the paper shows as "session setup" in
Figure 6.
"""

from .context import OscoreError, ReplayError, ReplayWindow, SecurityContext
from .option import OscoreOptionValue
from .protect import protect_request, protect_response, unprotect_request, unprotect_response
from .cacheable import (
    CiphertextCache,
    derive_deterministic_context,
    protect_cacheable_request,
    protect_cacheable_response,
    unprotect_deterministic_request,
)
from .group import (
    GroupContext,
    protect_group_request,
    protect_group_response,
    unprotect_group_request,
    unprotect_group_response,
)

__all__ = [
    "OscoreError",
    "OscoreOptionValue",
    "ReplayError",
    "ReplayWindow",
    "SecurityContext",
    "CiphertextCache",
    "GroupContext",
    "derive_deterministic_context",
    "protect_cacheable_request",
    "protect_cacheable_response",
    "protect_group_request",
    "protect_group_response",
    "unprotect_deterministic_request",
    "unprotect_group_request",
    "unprotect_group_response",
    "protect_request",
    "protect_response",
    "unprotect_request",
    "unprotect_response",
]
