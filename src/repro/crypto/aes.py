"""AES-128 block cipher (FIPS 197), pure Python.

Only the forward cipher is implemented: every mode used in this
repository (CCM = CTR + CBC-MAC) needs encryption only. Tables are
precomputed at import time; per-block work is table lookups and XORs,
which is fast enough for simulated traffic volumes.
"""

from __future__ import annotations

from typing import List

_SBOX = [0] * 256


def _initialise_sbox() -> None:
    # Build the S-box from the multiplicative inverse in GF(2^8)
    # followed by the affine transformation, per FIPS 197 §5.1.1.
    p = q = 1
    _SBOX[0] = 0x63
    while True:
        # p := p * 3 in GF(2^8)
        p ^= (p << 1) ^ (0x1B if p & 0x80 else 0)
        p &= 0xFF
        # q := q / 3 (multiply by inverse of 3, via repeated doubling)
        q ^= q << 1
        q ^= q << 2
        q ^= q << 4
        q &= 0xFF
        if q & 0x80:
            q ^= 0x09
        transformed = (
            q
            ^ ((q << 1) | (q >> 7))
            ^ ((q << 2) | (q >> 6))
            ^ ((q << 3) | (q >> 5))
            ^ ((q << 4) | (q >> 4))
        ) & 0xFF
        _SBOX[p] = transformed ^ 0x63
        if p == 1:
            break


_initialise_sbox()


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


# T-tables: combined SubBytes + MixColumns per FIPS 197 §5.1.3 (the
# standard software optimisation used by embedded AES implementations).
_T0: List[int] = []
for x in range(256):
    s = _SBOX[x]
    s2 = _xtime(s)
    s3 = s2 ^ s
    _T0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
def _rotr32(value: int, bits: int) -> int:
    return ((value >> bits) | (value << (32 - bits))) & 0xFFFFFFFF


_T1 = [_rotr32(t, 8) for t in _T0]
_T2 = [_rotr32(t, 16) for t in _T0]
_T3 = [_rotr32(t, 24) for t in _T0]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class AES128:
    """AES with a 128-bit key; 10 rounds.

    >>> cipher = AES128(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> List[int]:
        words = [int.from_bytes(key[i : i + 4], "big") for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = words[i - 1]
            if i % 4 == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // 4 - 1] << 24
            words.append(words[i - 4] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]

        for round_index in range(1, 10):
            base = 4 * round_index
            t0 = (
                _T0[(s0 >> 24) & 0xFF]
                ^ _T1[(s1 >> 16) & 0xFF]
                ^ _T2[(s2 >> 8) & 0xFF]
                ^ _T3[s3 & 0xFF]
                ^ rk[base]
            )
            t1 = (
                _T0[(s1 >> 24) & 0xFF]
                ^ _T1[(s2 >> 16) & 0xFF]
                ^ _T2[(s3 >> 8) & 0xFF]
                ^ _T3[s0 & 0xFF]
                ^ rk[base + 1]
            )
            t2 = (
                _T0[(s2 >> 24) & 0xFF]
                ^ _T1[(s3 >> 16) & 0xFF]
                ^ _T2[(s0 >> 8) & 0xFF]
                ^ _T3[s1 & 0xFF]
                ^ rk[base + 2]
            )
            t3 = (
                _T0[(s3 >> 24) & 0xFF]
                ^ _T1[(s0 >> 16) & 0xFF]
                ^ _T2[(s1 >> 8) & 0xFF]
                ^ _T3[s2 & 0xFF]
                ^ rk[base + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3

        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        def final(a: int, b: int, c: int, d: int, key: int) -> int:
            return (
                (_SBOX[(a >> 24) & 0xFF] << 24)
                | (_SBOX[(b >> 16) & 0xFF] << 16)
                | (_SBOX[(c >> 8) & 0xFF] << 8)
                | _SBOX[d & 0xFF]
            ) ^ key

        out0 = final(s0, s1, s2, s3, rk[40])
        out1 = final(s1, s2, s3, s0, rk[41])
        out2 = final(s2, s3, s0, s1, rk[42])
        out3 = final(s3, s0, s1, s2, rk[43])
        return b"".join(s.to_bytes(4, "big") for s in (out0, out1, out2, out3))
