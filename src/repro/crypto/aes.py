"""AES-128 block cipher (FIPS 197), pure Python.

Only the forward cipher is implemented: every mode used in this
repository (CCM = CTR + CBC-MAC) needs encryption only. Tables are
precomputed at import time; per-block work is table lookups and XORs,
which is fast enough for simulated traffic volumes.
"""

from __future__ import annotations

from typing import Tuple

_SBOX = [0] * 256


def _initialise_sbox() -> None:
    # Build the S-box from the multiplicative inverse in GF(2^8)
    # followed by the affine transformation, per FIPS 197 §5.1.1.
    p = q = 1
    _SBOX[0] = 0x63
    while True:
        # p := p * 3 in GF(2^8)
        p ^= (p << 1) ^ (0x1B if p & 0x80 else 0)
        p &= 0xFF
        # q := q / 3 (multiply by inverse of 3, via repeated doubling)
        q ^= q << 1
        q ^= q << 2
        q ^= q << 4
        q &= 0xFF
        if q & 0x80:
            q ^= 0x09
        transformed = (
            q
            ^ ((q << 1) | (q >> 7))
            ^ ((q << 2) | (q >> 6))
            ^ ((q << 3) | (q >> 5))
            ^ ((q << 4) | (q >> 4))
        ) & 0xFF
        _SBOX[p] = transformed ^ 0x63
        if p == 1:
            break


_initialise_sbox()


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


# T-tables: combined SubBytes + MixColumns per FIPS 197 §5.1.3 (the
# standard software optimisation used by embedded AES implementations).
_T0 = []
for x in range(256):
    s = _SBOX[x]
    s2 = _xtime(s)
    s3 = s2 ^ s
    _T0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
def _rotr32(value: int, bits: int) -> int:
    return ((value >> bits) | (value << (32 - bits))) & 0xFFFFFFFF


# Tuples index marginally faster than lists on the hot path; the S-box
# additionally collapses to a bytes object (C-level int lookups).
_T0 = tuple(_T0)
_T1 = tuple(_rotr32(t, 8) for t in _T0)
_T2 = tuple(_rotr32(t, 16) for t in _T0)
_T3 = tuple(_rotr32(t, 24) for t in _T0)
_SBOX_BYTES = bytes(_SBOX)

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class AES128:
    """AES with a 128-bit key; 10 rounds.

    >>> cipher = AES128(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> Tuple[int, ...]:
        words = [int.from_bytes(key[i : i + 4], "big") for i in range(0, 16, 4)]  # noqa: E501
        for i in range(4, 44):
            temp = words[i - 1]
            if i % 4 == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // 4 - 1] << 24
            words.append(words[i - 4] ^ temp)
        return tuple(words)

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        # Hot path: locals for every table, single 128-bit load/store,
        # and the final round inlined — this function dominates the
        # OSCORE/DTLS transports' CPU profile.
        rk = self._round_keys
        T0, T1, T2, T3, S = _T0, _T1, _T2, _T3, _SBOX_BYTES
        value = int.from_bytes(block, "big")
        s0 = (value >> 96) ^ rk[0]
        s1 = ((value >> 64) & 0xFFFFFFFF) ^ rk[1]
        s2 = ((value >> 32) & 0xFFFFFFFF) ^ rk[2]
        s3 = (value & 0xFFFFFFFF) ^ rk[3]

        for base in range(4, 40, 4):
            t0 = (
                T0[(s0 >> 24) & 0xFF]
                ^ T1[(s1 >> 16) & 0xFF]
                ^ T2[(s2 >> 8) & 0xFF]
                ^ T3[s3 & 0xFF]
                ^ rk[base]
            )
            t1 = (
                T0[(s1 >> 24) & 0xFF]
                ^ T1[(s2 >> 16) & 0xFF]
                ^ T2[(s3 >> 8) & 0xFF]
                ^ T3[s0 & 0xFF]
                ^ rk[base + 1]
            )
            t2 = (
                T0[(s2 >> 24) & 0xFF]
                ^ T1[(s3 >> 16) & 0xFF]
                ^ T2[(s0 >> 8) & 0xFF]
                ^ T3[s1 & 0xFF]
                ^ rk[base + 2]
            )
            t3 = (
                T0[(s3 >> 24) & 0xFF]
                ^ T1[(s0 >> 16) & 0xFF]
                ^ T2[(s1 >> 8) & 0xFF]
                ^ T3[s2 & 0xFF]
                ^ rk[base + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3

        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        out0 = (
            (S[(s0 >> 24) & 0xFF] << 24)
            | (S[(s1 >> 16) & 0xFF] << 16)
            | (S[(s2 >> 8) & 0xFF] << 8)
            | S[s3 & 0xFF]
        ) ^ rk[40]
        out1 = (
            (S[(s1 >> 24) & 0xFF] << 24)
            | (S[(s2 >> 16) & 0xFF] << 16)
            | (S[(s3 >> 8) & 0xFF] << 8)
            | S[s0 & 0xFF]
        ) ^ rk[41]
        out2 = (
            (S[(s2 >> 24) & 0xFF] << 24)
            | (S[(s3 >> 16) & 0xFF] << 16)
            | (S[(s0 >> 8) & 0xFF] << 8)
            | S[s1 & 0xFF]
        ) ^ rk[42]
        out3 = (
            (S[(s3 >> 24) & 0xFF] << 24)
            | (S[(s0 >> 16) & 0xFF] << 16)
            | (S[(s1 >> 8) & 0xFF] << 8)
            | S[s2 & 0xFF]
        ) ^ rk[43]
        return (
            (out0 << 96) | (out1 << 64) | (out2 << 32) | out3
        ).to_bytes(16, "big")
