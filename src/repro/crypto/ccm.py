"""AES-CCM authenticated encryption (RFC 3610 / NIST SP 800-38C).

CCM combines CTR-mode encryption with a CBC-MAC over the nonce,
associated data, and plaintext. Both cipher suites the paper measures
are instances with different parameters:

* ``AES_128_CCM_8``     — DTLSv1.2 suite (RFC 6655): 12-byte nonce, 8-byte tag.
* ``AES_CCM_16_64_128`` — OSCORE/COSE default (RFC 8152): 13-byte nonce,
  8-byte tag.
"""

from __future__ import annotations

import hmac
import os
from functools import lru_cache

from .aes import AES128


class AEADError(Exception):
    """Raised when authenticated decryption fails."""


# Optional hardware-accelerated backend: when the ``cryptography``
# package happens to be installed (it is NOT a dependency of this
# repository), AES-CCM can run at C speed. The pure-Python
# implementation below remains the canonical one — both produce
# byte-identical RFC 3610 output, the test suite pins the pure path
# explicitly, and ``REPRO_PURE_CRYPTO=1`` disables the backend.
if os.environ.get("REPRO_PURE_CRYPTO"):
    _ACCELERATED_BACKEND = None
else:
    try:
        from cryptography.hazmat.primitives.ciphers.aead import (
            AESCCM as _ACCELERATED_BACKEND,
        )
    except ImportError:  # pragma: no cover - depends on environment
        _ACCELERATED_BACKEND = None


@lru_cache(maxsize=256)
def _accelerated_ccm(key: bytes, tag_length: int):
    """Shared accelerated AEAD instances (``None`` without backend)."""
    if _ACCELERATED_BACKEND is None:
        return None
    return _ACCELERATED_BACKEND(key, tag_length=tag_length)


@lru_cache(maxsize=256)
def _expanded_key(key: bytes) -> AES128:
    """Shared AES-128 key schedules.

    OSCORE constructs a fresh AEAD for every protected message
    exchange, always from the same handful of derived keys — expanding
    the key schedule each time was pure waste. :class:`AES128` is
    immutable after construction, so instances are safe to share. The
    cache is bounded (LRU, 256 keys); note that cached keys stay
    referenced for the cache's lifetime, which is fine for simulated
    credentials.
    """
    return AES128(key)


class AESCCM:
    """AES-128 in CCM mode with configurable nonce and tag length.

    Parameters
    ----------
    key:
        16-byte AES key.
    tag_length:
        MAC length in bytes (even, 4..16).
    nonce_length:
        Nonce length in bytes (7..13); the CTR counter occupies the
        remaining ``15 - nonce_length`` bytes.
    backend:
        ``"auto"`` (default) delegates seal/open to the optional
        accelerated backend when one is available; ``"pure"`` forces
        the from-scratch implementation.
    """

    def __init__(
        self,
        key: bytes,
        tag_length: int = 8,
        nonce_length: int = 13,
        backend: str = "auto",
    ):
        if tag_length % 2 or not 4 <= tag_length <= 16:
            raise ValueError("tag_length must be an even value in 4..16")
        if not 7 <= nonce_length <= 13:
            raise ValueError("nonce_length must be in 7..13")
        if backend not in ("auto", "pure"):
            raise ValueError(f"unknown backend {backend!r}")
        key = bytes(key)
        self._aes = _expanded_key(key)
        self._fast = _accelerated_ccm(key, tag_length) if backend == "auto" else None
        self.tag_length = tag_length
        self.nonce_length = nonce_length
        self._length_field = 15 - nonce_length

    # -- internals -------------------------------------------------------

    def _check_nonce(self, nonce: bytes) -> None:
        if len(nonce) != self.nonce_length:
            raise ValueError(
                f"nonce must be {self.nonce_length} bytes, got {len(nonce)}"
            )

    def _ctr_block(self, nonce: bytes, counter: int) -> bytes:
        block = (
            bytes([self._length_field - 1])
            + nonce
            + counter.to_bytes(self._length_field, "big")
        )
        return self._aes.encrypt_block(block)

    def _ctr_crypt(self, nonce: bytes, data: bytes) -> bytes:
        length = len(data)
        if not length:
            return b""
        # Generate the whole keystream, then XOR in one big-int
        # operation — byte-wise generator XOR was a top profile entry.
        encrypt = self._aes.encrypt_block
        prefix = bytes([self._length_field - 1]) + nonce
        length_field = self._length_field
        keystream = b"".join(
            encrypt(prefix + counter.to_bytes(length_field, "big"))
            for counter in range(1, (length + 15) // 16 + 1)
        )
        return (
            int.from_bytes(data, "big")
            ^ int.from_bytes(keystream[:length], "big")
        ).to_bytes(length, "big")

    def _cbc_mac(self, nonce: bytes, aad: bytes, plaintext: bytes) -> bytes:
        flags = 0
        if aad:
            flags |= 0x40
        flags |= ((self.tag_length - 2) // 2) << 3
        flags |= self._length_field - 1
        if len(plaintext) >= 1 << (8 * self._length_field):
            raise ValueError("plaintext too long for nonce length")
        b0 = (
            bytes([flags])
            + nonce
            + len(plaintext).to_bytes(self._length_field, "big")
        )

        blocks = bytearray(b0)
        if aad:
            if len(aad) < 0xFF00:
                blocks += len(aad).to_bytes(2, "big")
            else:
                blocks += b"\xff\xfe" + len(aad).to_bytes(4, "big")
            blocks += aad
            if len(blocks) % 16:
                blocks += bytes(16 - len(blocks) % 16)
        blocks += plaintext
        if len(blocks) % 16:
            blocks += bytes(16 - len(blocks) % 16)

        # CBC-MAC chain with integer XOR (no per-byte generators).
        encrypt = self._aes.encrypt_block
        from_bytes = int.from_bytes
        mac = 0
        for index in range(0, len(blocks), 16):
            mac = from_bytes(
                encrypt(
                    (mac ^ from_bytes(blocks[index : index + 16], "big"))
                    .to_bytes(16, "big")
                ),
                "big",
            )
        # Encrypt the MAC with counter block 0.
        mac ^= from_bytes(self._ctr_block(nonce, 0), "big")
        return mac.to_bytes(16, "big")[: self.tag_length]

    # -- public API ------------------------------------------------------

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || tag."""
        self._check_nonce(nonce)
        if self._fast is not None:
            if len(plaintext) >= 1 << (8 * self._length_field):
                raise ValueError("plaintext too long for nonce length")
            return self._fast.encrypt(nonce, plaintext, aad or None)
        tag = self._cbc_mac(nonce, aad, plaintext)
        return self._ctr_crypt(nonce, plaintext) + tag

    def decrypt(self, nonce: bytes, ciphertext: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext.

        Raises
        ------
        AEADError
            If the ciphertext is too short or the tag does not verify.
        """
        self._check_nonce(nonce)
        if len(ciphertext) < self.tag_length:
            raise AEADError("ciphertext shorter than authentication tag")
        if self._fast is not None:
            try:
                return self._fast.decrypt(nonce, ciphertext, aad or None)
            except Exception as exc:
                raise AEADError("CCM tag verification failed") from exc
        body, tag = ciphertext[: -self.tag_length], ciphertext[-self.tag_length :]
        plaintext = self._ctr_crypt(nonce, body)
        expected = self._cbc_mac(nonce, aad, plaintext)
        if not hmac.compare_digest(tag, expected):
            raise AEADError("CCM tag verification failed")
        return plaintext

    @property
    def overhead(self) -> int:
        """Bytes added to every protected payload (the tag)."""
        return self.tag_length


def AES_128_CCM_8(key: bytes) -> AESCCM:
    """The TLS_PSK_WITH_AES_128_CCM_8 AEAD (RFC 6655): N=12, M=8."""
    return AESCCM(key, tag_length=8, nonce_length=12)


def AES_CCM_16_64_128(key: bytes) -> AESCCM:
    """The COSE AES-CCM-16-64-128 AEAD (RFC 8152 §10.2): N=13, M=8."""
    return AESCCM(key, tag_length=8, nonce_length=13)
