"""AES-CCM authenticated encryption (RFC 3610 / NIST SP 800-38C).

CCM combines CTR-mode encryption with a CBC-MAC over the nonce,
associated data, and plaintext. Both cipher suites the paper measures
are instances with different parameters:

* ``AES_128_CCM_8``     — DTLSv1.2 suite (RFC 6655): 12-byte nonce, 8-byte tag.
* ``AES_CCM_16_64_128`` — OSCORE/COSE default (RFC 8152): 13-byte nonce,
  8-byte tag.
"""

from __future__ import annotations

import hmac

from .aes import AES128


class AEADError(Exception):
    """Raised when authenticated decryption fails."""


class AESCCM:
    """AES-128 in CCM mode with configurable nonce and tag length.

    Parameters
    ----------
    key:
        16-byte AES key.
    tag_length:
        MAC length in bytes (even, 4..16).
    nonce_length:
        Nonce length in bytes (7..13); the CTR counter occupies the
        remaining ``15 - nonce_length`` bytes.
    """

    def __init__(self, key: bytes, tag_length: int = 8, nonce_length: int = 13):
        if tag_length % 2 or not 4 <= tag_length <= 16:
            raise ValueError("tag_length must be an even value in 4..16")
        if not 7 <= nonce_length <= 13:
            raise ValueError("nonce_length must be in 7..13")
        self._aes = AES128(key)
        self.tag_length = tag_length
        self.nonce_length = nonce_length
        self._length_field = 15 - nonce_length

    # -- internals -------------------------------------------------------

    def _check_nonce(self, nonce: bytes) -> None:
        if len(nonce) != self.nonce_length:
            raise ValueError(
                f"nonce must be {self.nonce_length} bytes, got {len(nonce)}"
            )

    def _ctr_block(self, nonce: bytes, counter: int) -> bytes:
        block = (
            bytes([self._length_field - 1])
            + nonce
            + counter.to_bytes(self._length_field, "big")
        )
        return self._aes.encrypt_block(block)

    def _ctr_crypt(self, nonce: bytes, data: bytes) -> bytes:
        out = bytearray()
        for index in range(0, len(data), 16):
            keystream = self._ctr_block(nonce, index // 16 + 1)
            chunk = data[index : index + 16]
            out += bytes(a ^ b for a, b in zip(chunk, keystream))
        return bytes(out)

    def _cbc_mac(self, nonce: bytes, aad: bytes, plaintext: bytes) -> bytes:
        flags = 0
        if aad:
            flags |= 0x40
        flags |= ((self.tag_length - 2) // 2) << 3
        flags |= self._length_field - 1
        if len(plaintext) >= 1 << (8 * self._length_field):
            raise ValueError("plaintext too long for nonce length")
        b0 = (
            bytes([flags])
            + nonce
            + len(plaintext).to_bytes(self._length_field, "big")
        )

        blocks = bytearray(b0)
        if aad:
            if len(aad) < 0xFF00:
                blocks += len(aad).to_bytes(2, "big")
            else:
                blocks += b"\xff\xfe" + len(aad).to_bytes(4, "big")
            blocks += aad
            if len(blocks) % 16:
                blocks += bytes(16 - len(blocks) % 16)
        blocks += plaintext
        if len(blocks) % 16:
            blocks += bytes(16 - len(blocks) % 16)

        mac = bytes(16)
        for index in range(0, len(blocks), 16):
            mac = self._aes.encrypt_block(
                bytes(a ^ b for a, b in zip(mac, blocks[index : index + 16]))
            )
        # Encrypt the MAC with counter block 0.
        keystream = self._ctr_block(nonce, 0)
        return bytes(a ^ b for a, b in zip(mac, keystream))[: self.tag_length]

    # -- public API ------------------------------------------------------

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || tag."""
        self._check_nonce(nonce)
        tag = self._cbc_mac(nonce, aad, plaintext)
        return self._ctr_crypt(nonce, plaintext) + tag

    def decrypt(self, nonce: bytes, ciphertext: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext.

        Raises
        ------
        AEADError
            If the ciphertext is too short or the tag does not verify.
        """
        self._check_nonce(nonce)
        if len(ciphertext) < self.tag_length:
            raise AEADError("ciphertext shorter than authentication tag")
        body, tag = ciphertext[: -self.tag_length], ciphertext[-self.tag_length :]
        plaintext = self._ctr_crypt(nonce, body)
        expected = self._cbc_mac(nonce, aad, plaintext)
        if not hmac.compare_digest(tag, expected):
            raise AEADError("CCM tag verification failed")
        return plaintext

    @property
    def overhead(self) -> int:
        """Bytes added to every protected payload (the tag)."""
        return self.tag_length


def AES_128_CCM_8(key: bytes) -> AESCCM:
    """The TLS_PSK_WITH_AES_128_CCM_8 AEAD (RFC 6655): N=12, M=8."""
    return AESCCM(key, tag_length=8, nonce_length=12)


def AES_CCM_16_64_128(key: bytes) -> AESCCM:
    """The COSE AES-CCM-16-64-128 AEAD (RFC 8152 §10.2): N=13, M=8."""
    return AESCCM(key, tag_length=8, nonce_length=13)
