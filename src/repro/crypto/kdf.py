"""Key derivation: HKDF-SHA256 (RFC 5869) and the TLS 1.2 PRF (RFC 5246).

OSCORE derives its sender/recipient keys and common IV with HKDF
(RFC 8613 §3.2); DTLSv1.2 derives the key block from the premaster
secret with the SHA-256 PRF (RFC 5246 §5, unchanged by RFC 6347).
"""

from __future__ import annotations

import hashlib
import hmac


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: PRK = HMAC-SHA256(salt, IKM)."""
    if not salt:
        salt = bytes(hashlib.sha256().digest_size)
    return hmac.new(salt, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand to *length* bytes."""
    if length > 255 * 32:
        raise ValueError("HKDF-Expand length too large")
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hashlib.sha256).digest()
        output += block
        counter += 1
    return output[:length]


def hkdf_sha256(salt: bytes, ikm: bytes, info: bytes, length: int) -> bytes:
    """Full HKDF: extract then expand."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)


def tls12_prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """TLS 1.2 PRF with P_SHA256 (RFC 5246 §5)."""
    full_seed = label + seed
    output = b""
    a_value = full_seed
    while len(output) < length:
        a_value = hmac.new(secret, a_value, hashlib.sha256).digest()
        output += hmac.new(secret, a_value + full_seed, hashlib.sha256).digest()
    return output[:length]
