"""Cryptographic substrate: AES-128, CCM AEAD, HKDF, TLS 1.2 PRF.

The paper's endpoints use AES-128-CCM-8 for DTLSv1.2 (RFC 6655) and
AES-CCM-16-64-128 for OSCORE (RFC 8152 §10.2); both are the same block
cipher in CCM mode with different nonce/tag parameters. We implement
AES-128 from scratch (the standard library offers no block cipher) and
parameterised CCM on top, plus HKDF-SHA256 (OSCORE key derivation,
RFC 8613 §3.2) and the TLS 1.2 PRF (DTLS key derivation, RFC 5246 §5).
"""

from .aes import AES128
from .ccm import AESCCM, AEADError, AES_128_CCM_8, AES_CCM_16_64_128
from .kdf import hkdf_expand, hkdf_extract, hkdf_sha256, tls12_prf

__all__ = [
    "AEADError",
    "AES128",
    "AESCCM",
    "AES_128_CCM_8",
    "AES_CCM_16_64_128",
    "hkdf_expand",
    "hkdf_extract",
    "hkdf_sha256",
    "tls12_prf",
]
