"""Command-line interface: explore the reproduction without writing code.

Subcommands
-----------
``run``
    The unified façade: execute one :class:`repro.api.RunSpec` —
    ``"[preset][,key=value]..."`` including ``substrate=sim|live|fleet``,
    ``repeats=N``, ``workers=N`` — on any substrate and print (or
    ``--json``-emit) the versioned unified Report.
``dissect``
    Print the Figure 6 per-layer packet dissection for one transport
    (any registry profile, including the modeled QUIC), or for every
    transport with ``--sweep``.
``resolve``
    Run a demo resolution over a chosen transport/scenario and print
    timings.
``experiment``
    Run a full Figure 7-style experiment — on the default Figure 2
    setup, on a named/inline scenario (``--scenario``), or as a
    (transport × topology × loss × cache-placement × scheme) sweep
    (``--sweep``). ``--cache-placement``/``--cache-scheme`` pick the
    Section 6.1 caching configuration; with ``--sweep`` they accept
    comma-separated lists and become grid axes. ``--json`` emits the
    same unified Report JSON as ``run`` and ``loadtest`` (a sweep
    emits per-cell Reports keyed by string grid coordinates).
``memory``
    Print the Figure 5 / Figure 8 build-size tables.
``compress``
    Show the Section 7 CBOR compression for a given name.
``serve``
    Run the live DoC server on a real UDP socket (any live transport
    profile: udp, dtls, coap, coaps, oscore).
``loadtest``
    Drive open- or closed-loop load against a live server and report
    qps, latency percentiles, timeouts, and cache ratios (``--json``
    for machine-readable output). Prints a per-second progress line
    to stderr (silenced by ``--json``); ``--stream`` mirrors the
    per-second telemetry as NDJSON to stdout, a file, or a TCP peer.
``watch``
    Render a telemetry NDJSON stream (from ``--stream``) as live
    qps/p99 lines — from stdin, or over TCP with ``--listen PORT``.

Examples
--------
::

    python -m repro.cli run one-hop,transport=coap,queries=20
    python -m repro.cli run transport=coap,queries=50,substrate=live --json
    python -m repro.cli run figure7,repeats=5,workers=4 --json report.json
    python -m repro.cli serve --transport udp
    python -m repro.cli serve --transport oscore --port 5853 --duration 30
    python -m repro.cli loadtest --rate 50 --duration 2 --json
    python -m repro.cli loadtest --transport oscore --mode closed \
        --concurrency 16 --duration 5
    python -m repro.cli dissect --transport oscore
    python -m repro.cli dissect --sweep
    python -m repro.cli resolve --transport coaps --names 5
    python -m repro.cli resolve --scenario three-hop,loss=0.1
    python -m repro.cli experiment --transport coap --queries 50 --loss 0.2
    python -m repro.cli experiment --scenario figure7,transport=oscore
    python -m repro.cli experiment --cache-placement client-coap+proxy \
        --cache-scheme doh-like
    python -m repro.cli experiment --sweep --transports udp,coap,oscore \
        --topologies figure2,one-hop --losses 0.05,0.25 --queries 20
    python -m repro.cli experiment --sweep --transports coap \
        --cache-placement none,client-coap,all --cache-scheme doh-like,eol-ttls
    python -m repro.cli memory
    python -m repro.cli compress --name device.example.org
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

#: Fallbacks for ``experiment`` flags when no ``--scenario`` is given
#: (flags default to ``None`` so explicit values can override a
#: scenario's own settings).
_EXPERIMENT_DEFAULTS = {
    "transport": "coap",
    "queries": 50,
    "loss": 0.15,
    "l2_retries": 1,
    "seed": 1,
}

#: CLI flag → scenario-spec key, shared by ``resolve`` and ``experiment``.
_FLAG_SPEC_KEYS = {
    "transport": "transport",
    "queries": "queries",
    "loss": "loss",
    "l2_retries": "retries",
    "seed": "seed",
}


def _merged_scenario(args: argparse.Namespace, flags, defaults):
    """Scenario from ``--scenario`` (or defaults) with flag overrides.

    *flags* names the argparse attributes to consider; explicit flag
    values always win, *defaults* fill in only when no ``--scenario``
    was given.
    """
    from repro.scenarios import Scenario, scenario_from_spec

    if args.scenario:
        scenario = scenario_from_spec(args.scenario)
        defaults = {}
    else:
        scenario = Scenario()
    overrides = []
    for flag in flags:
        value = getattr(args, flag)
        if value is None:
            value = defaults.get(flag)
        if value is not None:
            overrides.append(f"{_FLAG_SPEC_KEYS[flag]}={value}")
    if overrides:
        scenario = scenario_from_spec(",".join(overrides), base=scenario)
    return scenario


def _emit_json(payload: dict, dest: str) -> None:
    """Write *payload* to stdout (``dest == "-"``) or to a file."""
    import json

    text = json.dumps(payload, indent=2, sort_keys=False)
    if dest == "-":
        print(text)
    else:
        with open(dest, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"report written to {dest}")


def _print_report(report) -> None:
    """Human summary of a unified Report (shared by ``run`` and
    ``experiment``)."""
    metrics = report.metrics
    spec = report.spec
    print(f"substrate:        {report.substrate}")
    print(f"transport:        {spec.get('transport', '?')}")
    print(f"queries:          {metrics['queries.issued']}")
    print(f"success rate:     {metrics['queries.success_rate']:.2%} "
          f"({metrics['queries.timeouts']} timeouts, "
          f"{metrics['queries.rcode_failures']} rcode failures)")
    p50 = metrics["latency.p50_ms"]
    if p50 is not None:
        print(f"latency p50:      {p50:.2f} ms")
        print(f"latency p95:      {metrics['latency.p95_ms']:.2f} ms")
        print(f"latency p99:      {metrics['latency.p99_ms']:.2f} ms")
        print(f"latency mean/max: {metrics['latency.mean_ms']:.2f} / "
              f"{metrics['latency.max_ms']:.2f} ms")
    print(f"throughput:       {metrics['throughput.qps']} qps")
    locations = sorted({
        key.split(".")[1]
        for key in metrics
        if key.startswith("cache.")
    })
    for location in locations:
        print(f"cache {location:12s} hit-ratio "
              f"{metrics[f'cache.{location}.hit_ratio']:.0%}  "
              f"hits {metrics[f'cache.{location}.hits']}  "
              f"validations {metrics[f'cache.{location}.validations']}")
    if report.substrate == "sim":
        print(f"frames @1hop:     {metrics['sim.link.frames_1hop']}")
        print(f"frames @2hop:     {metrics['sim.link.frames_2hop']}")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import RunSpec, run

    spec = RunSpec.from_spec(args.spec)
    report = run(spec)
    if args.json is not None:
        _emit_json(report.to_json(), args.json)
    else:
        _print_report(report)
    return 0 if (
        report.metrics["queries.issued"]
        and report.metrics["queries.success_rate"] > 0
    ) else 1


def _print_dissections(dissections) -> None:
    print(f"{'message':16s} {'DNS':>5s} {'sec':>5s} {'CoAP':>5s} "
          f"{'UDP':>5s} frames")
    for d in dissections:
        print(
            f"{d.message:16s} {d.dns_bytes:5d} {d.security_bytes:5d} "
            f"{d.coap_bytes:5d} {d.udp_payload:5d} {list(d.frame_sizes)}"
            f"{'  FRAGMENTED' if d.fragmented else ''}"
        )


def _cmd_dissect(args: argparse.Namespace) -> int:
    from repro.coap.codes import Code
    from repro.experiments.packet_sizes import dissect_transport
    from repro.transports.registry import registry

    method = {"fetch": Code.FETCH, "get": Code.GET, "post": Code.POST}[args.method]
    if args.sweep:
        for profile in registry:
            print(f"--- {profile.display_name} ---")
            _print_dissections(profile.dissect(method=method))
            print()
        return 0
    _print_dissections(dissect_transport(args.transport, method=method))
    return 0


def _cmd_resolve(args: argparse.Namespace) -> int:
    from repro.dns import RecordType, RecursiveResolver, Zone
    from repro.sim import Simulator
    from repro.transports.registry import TransportEnv, registry

    scenario = _merged_scenario(
        args,
        flags=("transport", "loss", "seed"),
        defaults={"transport": "coap", "loss": 0.05, "seed": 1},
    )

    profile = registry.get(scenario.transport)
    sim = Simulator(seed=scenario.seed)
    topo = scenario.topology.build(sim)
    zone = Zone()
    for index in range(args.names):
        zone.add_address(
            f"name{index:02d}.example.org", f"2001:db8::{index + 1}", ttl=300
        )
    env = TransportEnv(
        sim=sim,
        topology=topo,
        resolver=RecursiveResolver(zone),
        scenario=scenario,
    )
    profile.provision(env)
    env.server = profile.build_server(env)
    env.target = env.server.endpoint
    client = profile.build_client(env, topo.clients[0], 0)

    def report_for(name: str, issued_at: float):
        def report(result, error) -> None:
            if error is not None:
                print(f"  FAILED: {error}")
            else:
                elapsed = sim.now - issued_at
                print(
                    f"  {name:28s} -> "
                    f"{', '.join(result.addresses):20s} "
                    f"{elapsed * 1000:7.1f} ms"
                )
        return report

    def issue(index: int) -> None:
        name = f"name{index:02d}.example.org"
        client.resolve(name, RecordType.AAAA, report_for(name, sim.now))

    for index in range(args.names):
        sim.schedule(index * 0.5, issue, index)
    sim.run(until=60)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.experiments.metrics import fraction_below, percentile
    from repro.scenarios import ScenarioRunner, get_topology

    runner = ScenarioRunner()
    scenario = _merged_scenario(
        args,
        flags=("transport", "queries", "loss", "l2_retries", "seed"),
        defaults=_EXPERIMENT_DEFAULTS,
    )

    if not args.sweep:
        for flag in ("transports", "topologies", "losses", "workers"):
            if getattr(args, flag) is not None:
                print(f"error: --{flag} requires --sweep", file=sys.stderr)
                return 2
        for flag in ("cache_placement", "cache_scheme"):
            value = getattr(args, flag)
            if value is not None and "," in value:
                name = flag.replace("_", "-")
                print(f"error: a comma-separated --{name} list requires "
                      f"--sweep", file=sys.stderr)
                return 2
        overrides = []
        if args.cache_placement is not None:
            overrides.append(f"cache={args.cache_placement}")
        if args.cache_scheme is not None:
            overrides.append(f"scheme={args.cache_scheme}")
        if overrides:
            from repro.scenarios import scenario_from_spec

            scenario = scenario_from_spec(",".join(overrides), base=scenario)

    if args.sweep:
        if args.loss is not None:
            print("error: use --losses (not --loss) with --sweep",
                  file=sys.stderr)
            return 2
        if args.transport is not None:
            print("error: use --transports (not --transport) with --sweep",
                  file=sys.stderr)
            return 2
        transports = (args.transports or "udp,coap,oscore").split(",")
        losses = [
            float(value) for value in (args.losses or "0.05,0.25").split(",")
        ]
        # Keep sweep cells comparable with single runs: the run's MAC
        # retry setting applies to every topology preset.
        topologies = [
            replace(get_topology(name), l2_retries=scenario.topology.l2_retries)
            for name in (args.topologies or "figure2,one-hop").split(",")
        ]
        placements = (
            args.cache_placement.split(",") if args.cache_placement else None
        )
        schemes = (
            args.cache_scheme.split(",") if args.cache_scheme else None
        )
        sweep = runner.sweep(
            base=scenario,
            transports=transports,
            topologies=topologies,
            losses=losses,
            cache_placements=placements,
            schemes=schemes,
            workers=args.workers,
        )
        if args.json is not None:
            _emit_json(sweep.to_json(), args.json)
            return 0
        cache_axes = placements is not None or schemes is not None
        header = (f"{'transport':10s} {'topology':14s} {'loss':>5s} "
                  f"{'success':>8s} {'median':>9s} {'p95':>9s} "
                  f"{'frames@1hop':>12s}")
        if cache_axes:
            header += (f" {'cache':>28s} {'scheme':>9s} "
                       f"{'hit%':>6s} {'valid':>6s}")
        print(header)
        for cell in sweep:
            metrics = cell.metrics()
            row = (
                f"{cell.transport:10s} {cell.topology:14s} {cell.loss:5.2f} "
                f"{metrics['success_rate']:8.2%} "
                f"{metrics['median_s'] * 1000:7.1f} ms "
                f"{metrics['p95_s']:7.2f} s "
                f"{metrics['frames_1hop']:12d}"
            )
            if cache_axes:
                # Hit ratio over every lookup the clients' caches saw
                # (client DNS + client CoAP + proxy), and the total
                # successful revalidations — the Figure 11 events.
                locations = ("client_dns", "client_coap", "proxy")
                hits = sum(
                    metrics.get(f"{loc}_hits", 0) for loc in locations
                )
                lookups = hits + sum(
                    metrics.get(f"{loc}_{kind}", 0)
                    for loc in locations
                    for kind in ("stale_hits", "misses")
                )
                hit_pct = hits / lookups if lookups else 0.0
                validations = sum(
                    metrics.get(f"{loc}_validations", 0) for loc in locations
                )
                row += (
                    f" {cell.placement or '-':>28s} {cell.scheme or '-':>9s} "
                    f"{hit_pct:6.1%} {validations:6d}"
                )
            print(row)
        return 0

    # The single run flows through the unified façade: the Report is
    # what --json emits, its raw ExperimentResult what the legacy
    # human-readable summary is printed from.
    from repro.api import RunSpec
    from repro.api import run as api_run

    report = api_run(RunSpec.from_scenario(scenario))
    if args.json is not None:
        _emit_json(report.to_json(), args.json)
        return 0
    result = report.raw
    times = result.resolution_times
    print(f"transport:        {scenario.transport}")
    print(f"queries:          {len(result.outcomes)}")
    print(f"success rate:     {result.success_rate:.2%}")
    if times:
        print(f"< 250 ms:         {fraction_below(times, 0.25):.0%}")
        print(f"median:           {percentile(times, 50) * 1000:.1f} ms")
        print(f"p95:              {percentile(times, 95):.2f} s")
        print(f"max:              {max(times):.2f} s")
    print(f"frames @1hop:     {result.link.frames_1hop}")
    print(f"frames @2hop:     {result.link.frames_2hop}")
    for location, stats in sorted(result.cache_stats.items()):
        print(
            f"cache {location:12s} hits {stats.hits:4d}  "
            f"stale {stats.stale_hits:4d}  valid {stats.validations:4d}  "
            f"hit-ratio {stats.hit_ratio:.0%}"
        )
    return 0


def _parse_scheme(value: str):
    from repro.doc import CachingScheme

    try:
        return CachingScheme(value.lower())
    except ValueError:
        known = ", ".join(s.value for s in CachingScheme)
        raise SystemExit(
            f"error: unknown caching scheme {value!r} (known: {known})"
        ) from None


def _open_stream_sink(dest: str):
    """A telemetry sink writing one NDJSON line per snapshot.

    *dest* is ``-`` (stdout), ``tcp:HOST:PORT`` (a line stream to a
    listening peer, e.g. ``repro watch --listen PORT``), or a file
    path. Returns ``(sink, close)``.
    """
    import json

    if dest == "-":
        stream = sys.stdout

        def close() -> None:
            pass
    elif dest.startswith("tcp:"):
        import socket as socket_module

        try:
            _, host, port_text = dest.split(":", 2)
            port = int(port_text)
        except ValueError:
            raise SystemExit(
                f"error: bad --stream destination {dest!r} "
                "(expected tcp:HOST:PORT)"
            ) from None
        sock = socket_module.create_connection((host, port), timeout=5)
        stream = sock.makefile("w", encoding="utf-8")

        def close() -> None:
            try:
                stream.close()
            finally:
                sock.close()
    else:
        stream = open(dest, "w", encoding="utf-8")
        close = stream.close

    def sink(record: dict) -> None:
        stream.write(json.dumps(record) + "\n")
        stream.flush()

    return sink, close


def _progress_sink(record: dict) -> None:
    """One per-second progress line on stderr (sent/recv/qps/p99)."""
    from repro.obs.telemetry import format_snapshot

    print(format_snapshot(record), file=sys.stderr, flush=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.live import DocLiveServer

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.workers > 1:
        return _cmd_serve_pool(args)
    server = DocLiveServer(
        transport=args.transport,
        host=args.host,
        port=args.port,
        num_names=args.names,
        dataset=args.dataset,
        name_seed=args.name_seed,
        scheme=_parse_scheme(args.cache_scheme),
        seed=args.seed,
        secret=args.secret.encode(),
        metrics_port=args.metrics_port,
    )
    stream_close = None
    sinks = []
    if args.stream:
        stream_sink, stream_close = _open_stream_sink(args.stream)
        sinks.append(stream_sink)

    async def run() -> None:
        from repro.obs.telemetry import TelemetrySampler, run_sampler

        async with server:
            host, port = server.endpoint
            print(
                f"serving DNS over {args.transport} on {host}:{port} "
                f"({len(server.names)} names, scheme {args.cache_scheme})",
                flush=True,
            )
            if server.metrics_endpoint:
                print(
                    f"metrics on {server.metrics_endpoint}/metrics "
                    f"(health: {server.metrics_endpoint}/healthz)",
                    flush=True,
                )
            sampler_task = None
            sampler_stop = asyncio.Event()
            if sinks:
                sampler = TelemetrySampler(server.registry, sinks=sinks)
                sampler_task = asyncio.ensure_future(
                    run_sampler(sampler, sampler_stop)
                )
            try:
                if args.duration > 0:
                    await asyncio.sleep(args.duration)
                else:
                    await asyncio.Event().wait()
            finally:
                if sampler_task is not None:
                    sampler_stop.set()
                    await sampler_task

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        if stream_close is not None:
            stream_close()
    stats = server.stats()
    print(f"served {stats.get('queries_handled', 0)} queries "
          f"({stats['datagrams_received']} datagrams in, "
          f"{stats['datagrams_sent']} out)")
    return 0


def _cmd_serve_pool(args: argparse.Namespace) -> int:
    """``serve --workers N``: an SO_REUSEPORT-sharded worker pool.

    The single-worker command path above stays untouched — ``--workers
    1`` (the default) never constructs a pool, so existing serve runs
    behave bit-identically.
    """
    import sys
    import time

    from repro.live import ServePool

    pool = ServePool(
        workers=args.workers,
        transport=args.transport,
        host=args.host,
        port=args.port,
        num_names=args.names,
        dataset=args.dataset,
        name_seed=args.name_seed,
        scheme=_parse_scheme(args.cache_scheme),
        seed=args.seed,
        secret=args.secret.encode(),
    )
    if pool.warning:
        print(f"warning: {pool.warning}", file=sys.stderr, flush=True)
    host, port = pool.start()
    print(
        f"serving DNS over {args.transport} on {host}:{port} "
        f"({args.names} names, scheme {args.cache_scheme}, "
        f"{pool.workers} workers)",
        flush=True,
    )
    obs_http = None
    if args.metrics_port is not None:
        from repro.obs.http import ObsHttpThread

        # The pool parent is synchronous, so the scrape endpoint runs
        # on its own daemon thread; pipe access inside render/health is
        # lock-guarded by the pool.
        obs_http = ObsHttpThread(
            pool.render_metrics, pool.health,
            host=args.host, port=args.metrics_port,
        )
        obs_http.start()
        print(
            f"metrics on {obs_http.endpoint}/metrics "
            f"(health: {obs_http.endpoint}/healthz)",
            flush=True,
        )
    sampler = None
    stream_close = None
    if args.stream:
        from repro.obs.metrics import merge_snapshots
        from repro.obs.telemetry import TelemetrySampler

        stream_sink, stream_close = _open_stream_sink(args.stream)
        sampler = TelemetrySampler(
            lambda: merge_snapshots(
                snap for _index, snap in pool.sample()
            ),
            sinks=[stream_sink],
        )
        sampler.tick()  # prime
    try:
        deadline = (
            time.monotonic() + args.duration if args.duration > 0 else None
        )
        while deadline is None or time.monotonic() < deadline:
            step = 1.0 if sampler is not None else 3600.0
            if deadline is not None:
                step = min(step, max(deadline - time.monotonic(), 0.0))
            time.sleep(step)
            if sampler is not None:
                sampler.tick()
    except KeyboardInterrupt:
        pass
    finally:
        if stream_close is not None:
            stream_close()
    stats = pool.drain()
    if obs_http is not None:
        obs_http.stop()
    per_worker = " + ".join(
        str(worker.get("queries_handled", 0))
        for worker in stats.get("workers", [])
    )
    print(f"served {stats.get('queries_handled', 0)} queries "
          f"across {pool.workers} workers ({per_worker or 0}; "
          f"{stats['io']['recv_bursts']} bursts, "
          f"{stats['workers_failed']} workers failed)")
    return pool.exit_code


def _loadtest_report(args: argparse.Namespace, workload, report):
    """The unified Report for one ``loadtest`` pass: the loadgen dict
    plus the RunSpec description reconstructed from the CLI flags."""
    from dataclasses import replace

    from repro.api import LiveOptions, RunSpec
    from repro.api.report import report_from_loadgen
    from repro.scenarios import CachingSpec, Scenario

    spec = RunSpec(
        scenario=Scenario(
            name="loadtest",
            transport=args.transport,
            workload=replace(
                workload,
                num_queries=max(1, report["queries"]),
                num_names=args.names,
                query_rate=(
                    args.rate if args.mode == "open" else workload.query_rate
                ),
            ),
            scheme=_parse_scheme(args.cache_scheme),
            # `--client-cache all` means "every cache the live client
            # has" — strip the proxy bit the placement vocabulary would
            # otherwise imply (the resolver accepts it the same way).
            caching=replace(
                CachingSpec.from_placement(args.client_cache), proxy=False
            ),
        ),
        substrate="live",
        seed=args.seed,
        live=LiveOptions(
            host=args.host, port=args.port, mode=args.mode,
            concurrency=args.concurrency, timeout=args.timeout,
            dataset=args.dataset, name_seed=args.name_seed,
            load_workers=args.workers,
        ),
    )
    return report_from_loadgen(report, spec=spec.to_dict())


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import asyncio

    from repro.live import LiveResolver, build_names, generate_load
    from repro.scenarios import WorkloadSpec

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    workload = WorkloadSpec(
        arrival=args.arrival,
        burst_on=args.burst_on,
        burst_off=args.burst_off,
        zipf_alpha=args.zipf,
    )
    names = build_names(
        args.names, dataset=args.dataset, name_seed=args.name_seed
    )
    resolver = LiveResolver(
        (args.host, args.port),
        transport=args.transport,
        scheme=_parse_scheme(args.cache_scheme),
        cache_placement=args.client_cache,
        seed=args.seed + 1,
        secret=args.secret.encode(),
        timeout=args.timeout,
    )

    # Per-second telemetry sinks: a progress line on stderr by default
    # (silenced by --json, which owns the machine-readable contract),
    # plus the optional --stream NDJSON destination.
    sinks = []
    stream_close = None
    if args.json is None:
        sinks.append(_progress_sink)
    if args.stream:
        if args.workers > 1:
            print(
                "warning: --stream applies to the single-process path; "
                "distributed runs carry their merged telemetry in the "
                "final report only",
                file=sys.stderr, flush=True,
            )
        else:
            stream_sink, stream_close = _open_stream_sink(args.stream)
            sinks.append(stream_sink)

    async def run() -> dict:
        async with resolver:
            return await generate_load(
                resolver,
                names,
                rate=args.rate,
                duration=args.duration,
                mode=args.mode,
                concurrency=args.concurrency,
                timeout=args.timeout,
                seed=args.seed,
                workload=workload,
                snapshot_sinks=sinks,
            )

    if args.workers > 1:
        from repro.live import run_distributed_load

        report = run_distributed_load(
            (args.host, args.port),
            transport=args.transport,
            scheme=_parse_scheme(args.cache_scheme),
            cache_placement=args.client_cache,
            secret=args.secret.encode(),
            timeout=args.timeout,
            num_names=args.names,
            dataset=args.dataset,
            name_seed=args.name_seed,
            rate=args.rate,
            duration=args.duration,
            mode=args.mode,
            concurrency=args.concurrency,
            seed=args.seed,
            workload=workload,
            workers=args.workers,
        )
    else:
        try:
            report = asyncio.run(run())
        finally:
            if stream_close is not None:
                stream_close()
    if args.json is not None:
        # The machine-readable output is the unified Report — the same
        # document `repro run` and `experiment --json` emit — with the
        # flat loadgen dict available as its raw form.
        _emit_json(_loadtest_report(args, workload, report).to_json(),
                   args.json)
    else:
        latency = report["latency_ms"]
        print(f"transport:     {report['transport']} ({report['mode']} loop)")
        print(f"queries:       {report['queries']} in {report['elapsed_s']} s")
        print(f"success rate:  {report['success_rate']:.2%} "
              f"({report['timeouts']} timeouts)")
        print(f"achieved qps:  {report['achieved_qps']}")
        if "workers" in report:
            per = ", ".join(
                f"#{worker['worker']} {worker['achieved_qps']}"
                for worker in report["workers"]["load"]
            )
            print(f"load workers:  {per}")
        if latency["p50"] is not None:
            print(f"latency p50:   {latency['p50']:.2f} ms")
            print(f"latency p95:   {latency['p95']:.2f} ms")
            print(f"latency p99:   {latency['p99']:.2f} ms")
        for location, stats in sorted(report["cache"].items()):
            print(f"cache {location:12s} hit-ratio {stats['hit_ratio']:.0%}")
    return 0 if report["queries"] and report["success_rate"] > 0 else 1


def _cmd_watch(args: argparse.Namespace) -> int:
    """``repro watch``: render a live telemetry NDJSON stream.

    Reads per-second snapshot lines (the ``--stream`` vocabulary)
    from stdin by default, or accepts one TCP line-stream connection
    with ``--listen PORT`` — the peer for
    ``loadtest --stream tcp:HOST:PORT``. Malformed or non-snapshot
    lines are skipped with a note on stderr, so the stream can be
    piped through without pre-filtering.
    """
    import json

    from repro.api.schema import ValidationError
    from repro.obs.telemetry import format_snapshot, validate_snapshot

    rendered = 0
    skipped = 0

    def render(line: str) -> None:
        nonlocal rendered, skipped
        line = line.strip()
        if not line:
            return
        try:
            record = json.loads(line)
            validate_snapshot(record)
        except (ValueError, ValidationError):
            skipped += 1
            print("watch: skipping non-snapshot line", file=sys.stderr)
            return
        rendered += 1
        print(format_snapshot(record), flush=True)

    try:
        if args.listen is not None:
            import socket

            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((args.host, args.listen))
            listener.listen(1)
            print(
                f"watch: listening on {args.host}:"
                f"{listener.getsockname()[1]}",
                file=sys.stderr, flush=True,
            )
            conn, peer = listener.accept()
            print(f"watch: stream from {peer[0]}:{peer[1]}",
                  file=sys.stderr, flush=True)
            with conn, conn.makefile("r", encoding="utf-8") as stream:
                for line in stream:
                    render(line)
            listener.close()
        else:
            for line in sys.stdin:
                render(line)
    except KeyboardInterrupt:
        pass
    print(f"watch: {rendered} snapshots rendered, {skipped} skipped",
          file=sys.stderr)
    return 0 if rendered or not skipped else 1


def _cmd_memory(args: argparse.Namespace) -> int:
    from repro.memmodel import fig5_builds, fig8_builds

    print("Figure 5 (with CoAP example app):")
    for name, build in fig5_builds(with_get=True).items():
        print(f"  {name:10s} ROM {build.rom_kbytes:5.1f} kB   "
              f"RAM {build.ram_kbytes:4.1f} kB")
    print("Figure 8 (UDP/sock omitted):")
    for name, build in fig8_builds().items():
        print(f"  {name:10s} ROM {build.rom_kbytes:5.1f} kB")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.dns import (
        AAAAData,
        DNSClass,
        Flags,
        Message,
        Question,
        RecordType,
        ResourceRecord,
        make_query,
    )
    from repro.doc.cbor_format import encode_query, encode_response

    question = Question(args.name, RecordType.AAAA)
    wire_query = make_query(args.name, RecordType.AAAA, txid=0).encode()
    cbor_query = encode_query(question)
    response = Message(
        flags=Flags(qr=True),
        questions=(question,),
        answers=(
            ResourceRecord(args.name, RecordType.AAAA, DNSClass.IN, 300,
                           AAAAData("2001:db8::1")),
        ),
    )
    wire_response = response.encode()
    cbor_response = encode_response(response)
    print(f"name: {args.name} ({len(args.name)} chars)")
    print(f"query:    wire {len(wire_query):3d} B -> CBOR {len(cbor_query):3d} B "
          f"(-{100 * (1 - len(cbor_query) / len(wire_query)):.0f}%)")
    print(f"response: wire {len(wire_response):3d} B -> CBOR {len(cbor_response):3d} B "
          f"(-{100 * (1 - len(cbor_response) / len(wire_response)):.0f}%)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro.transports import transport_names

    parser = argparse.ArgumentParser(
        prog="repro", description="DNS over CoAP reproduction toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run",
        help="run a unified RunSpec on any substrate (repro.api)",
    )
    run.add_argument(
        "spec", metavar="SPEC",
        help="run spec: scenario keys plus substrate=sim|live|fleet, "
             "repeats=N, workers=N, live-host/live-port/mode/"
             "concurrency/timeout, churn/duty_cycle/flash_crowd, e.g. "
             "'one-hop,transport=coap,clients=1000000,substrate=fleet'",
    )
    run.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the unified Report JSON (to stdout, or to PATH)",
    )
    run.set_defaults(func=_cmd_run)

    dissect = subparsers.add_parser("dissect", help="Figure 6 packet dissection")
    dissect.add_argument(
        "--transport", default="coap", choices=transport_names(),
    )
    dissect.add_argument(
        "--method", default="fetch", choices=["fetch", "get", "post"]
    )
    dissect.add_argument(
        "--sweep", action="store_true",
        help="dissect every registered transport",
    )
    dissect.set_defaults(func=_cmd_dissect)

    resolve = subparsers.add_parser("resolve", help="demo DoC resolution")
    resolve.add_argument(
        "--transport", default=None,
        choices=transport_names(simulatable_only=True),
    )
    resolve.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help="scenario preset/spec, e.g. three-hop,loss=0.1",
    )
    resolve.add_argument("--names", type=int, default=4)
    resolve.add_argument("--loss", type=float, default=None)
    resolve.add_argument("--seed", type=int, default=None)
    resolve.set_defaults(func=_cmd_resolve)

    experiment = subparsers.add_parser("experiment", help="Figure 7-style run")
    experiment.add_argument(
        "--transport", default=None,
        choices=transport_names(simulatable_only=True),
    )
    experiment.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help="scenario preset/spec, e.g. figure7,transport=oscore",
    )
    experiment.add_argument(
        "--sweep", action="store_true",
        help="run a transport × topology × loss sweep",
    )
    experiment.add_argument(
        "--transports", default=None, metavar="LIST",
        help="sweep: comma-separated transports (default udp,coap,oscore)",
    )
    experiment.add_argument(
        "--topologies", default=None, metavar="LIST",
        help="sweep: comma-separated topology presets "
             "(default figure2,one-hop)",
    )
    experiment.add_argument(
        "--losses", default=None, metavar="LIST",
        help="sweep: comma-separated loss rates (default 0.05,0.25)",
    )
    experiment.add_argument(
        "--cache-placement", default=None, metavar="SPEC",
        help="cache placement: +-joined locations among client-dns, "
             "client-coap, proxy (or all/none); with --sweep a "
             "comma-separated list becomes a grid axis",
    )
    experiment.add_argument(
        "--cache-scheme", default=None, metavar="SCHEME",
        help="TTL handling scheme (doh-like or eol-ttls); with --sweep "
             "a comma-separated list becomes a grid axis",
    )
    experiment.add_argument("--queries", type=int, default=None)
    experiment.add_argument("--loss", type=float, default=None)
    experiment.add_argument("--l2-retries", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="sweep: run grid cells on N worker processes "
             "(default 1 = in-process serial; results are identical)",
    )
    experiment.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the unified Report JSON instead of the table "
             "(a sweep emits per-cell Reports keyed by grid "
             "coordinates; to stdout, or to PATH)",
    )
    experiment.set_defaults(func=_cmd_experiment)

    from repro.live.wiring import DEFAULT_LIVE_PORT, LIVE_TRANSPORTS

    def add_live_common(sub) -> None:
        # One shared default so a bare `serve` and a bare `loadtest`
        # always speak the same protocol.
        sub.add_argument(
            "--transport", default="udp", choices=list(LIVE_TRANSPORTS),
        )
        sub.add_argument("--host", default="127.0.0.1")
        sub.add_argument("--port", type=int, default=DEFAULT_LIVE_PORT)
        sub.add_argument(
            "--names", type=int, default=50,
            help="size of the name universe (server zone = loadgen names)",
        )
        sub.add_argument(
            "--dataset", default=None,
            help="draw names from a Section 3 dataset profile "
                 "(yourthings, iotfinder, moniotr, ixp)",
        )
        sub.add_argument(
            "--name-seed", type=int, default=7,
            help="seed of the shared name universe (must match between "
                 "serve and loadtest)",
        )
        sub.add_argument(
            "--cache-scheme", default="eol-ttls",
            help="TTL handling scheme (doh-like or eol-ttls)",
        )
        sub.add_argument("--seed", type=int, default=1)
        sub.add_argument(
            "--secret", default="repro-live-master-secret",
            help="shared OSCORE master secret (oscore transport)",
        )
        sub.add_argument(
            "--workers", type=int, default=1,
            help="worker processes: serve shards one port via "
                 "SO_REUSEPORT, loadtest forks distributed generators "
                 "(default 1 = the single-process path)",
        )

    serve = subparsers.add_parser(
        "serve", help="live DoC server on a real UDP socket"
    )
    add_live_common(serve)
    serve.add_argument(
        "--duration", type=float, default=0.0,
        help="stop after this many seconds (default: run until Ctrl-C)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus text) and /healthz on this "
             "TCP port (0 = ephemeral; sharded pools serve merged "
             "per-worker + pool-total series)",
    )
    serve.add_argument(
        "--stream", default=None, metavar="DEST",
        help="emit per-second telemetry snapshots as NDJSON to DEST: "
             "'-' for stdout, tcp:HOST:PORT, or a file path",
    )
    serve.set_defaults(func=_cmd_serve)

    loadtest = subparsers.add_parser(
        "loadtest", help="drive load against a live server"
    )
    add_live_common(loadtest)
    loadtest.add_argument(
        "--rate", type=float, default=50.0,
        help="open-loop offered rate in queries/s",
    )
    loadtest.add_argument("--duration", type=float, default=2.0)
    loadtest.add_argument(
        "--mode", default="open", choices=["open", "closed"],
    )
    loadtest.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop worker count",
    )
    loadtest.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-query deadline in seconds",
    )
    loadtest.add_argument(
        "--arrival", default="poisson", choices=["poisson", "bursty"],
        help="open-loop arrival process",
    )
    loadtest.add_argument("--burst-on", type=float, default=1.0)
    loadtest.add_argument("--burst-off", type=float, default=4.0)
    loadtest.add_argument(
        "--zipf", type=float, default=None, metavar="ALPHA",
        help="Zipf(α) name popularity (default: round-robin)",
    )
    loadtest.add_argument(
        "--client-cache", default="none", metavar="SPEC",
        help="client cache placement: +-joined among client-dns, "
             "client-coap (or all/none)",
    )
    loadtest.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the JSON report (to stdout, or to PATH)",
    )
    loadtest.add_argument(
        "--stream", default=None, metavar="DEST",
        help="emit per-second telemetry snapshots as NDJSON to DEST: "
             "'-' for stdout, tcp:HOST:PORT (e.g. a `repro watch "
             "--listen` peer), or a file path",
    )
    loadtest.set_defaults(func=_cmd_loadtest)

    watch = subparsers.add_parser(
        "watch",
        help="render a live telemetry stream (qps/p99 per second)",
    )
    watch.add_argument(
        "--listen", type=int, default=None, metavar="PORT",
        help="accept one TCP line-stream connection on PORT (the "
             "`--stream tcp:HOST:PORT` peer) instead of reading stdin",
    )
    watch.add_argument("--host", default="127.0.0.1")
    watch.set_defaults(func=_cmd_watch)

    memory = subparsers.add_parser("memory", help="Figure 5/8 build sizes")
    memory.set_defaults(func=_cmd_memory)

    compress = subparsers.add_parser("compress", help="Section 7 CBOR sizes")
    compress.add_argument("--name", default="name0000.example-iot.org")
    compress.set_defaults(func=_cmd_compress)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.live.wiring import LiveWiringError
    from repro.scenarios import ScenarioError
    from repro.transports.registry import (
        TransportCapabilityError,
        UnknownTransportError,
    )

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (
        ScenarioError, TransportCapabilityError, UnknownTransportError,
        LiveWiringError,
    ) as exc:
        # Misconfiguration (unknown names, bad spec keys) reads as a
        # CLI error; internal errors keep their tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
