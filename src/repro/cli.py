"""Command-line interface: explore the reproduction without writing code.

Subcommands
-----------
``dissect``
    Print the Figure 6 per-layer packet dissection for one transport.
``resolve``
    Run a demo resolution over a chosen transport on the Figure 2
    topology and print timings.
``experiment``
    Run a full Figure 7-style experiment and print summary statistics.
``memory``
    Print the Figure 5 / Figure 8 build-size tables.
``compress``
    Show the Section 7 CBOR compression for a given name.

Examples
--------
::

    python -m repro.cli dissect --transport oscore
    python -m repro.cli resolve --transport coaps --names 5
    python -m repro.cli experiment --transport coap --queries 50 --loss 0.2
    python -m repro.cli memory
    python -m repro.cli compress --name device.example.org
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_dissect(args: argparse.Namespace) -> int:
    from repro.coap.codes import Code
    from repro.experiments.packet_sizes import dissect_transport

    method = {"fetch": Code.FETCH, "get": Code.GET, "post": Code.POST}[args.method]
    dissections = dissect_transport(args.transport, method=method)
    print(f"{'message':16s} {'DNS':>5s} {'sec':>5s} {'CoAP':>5s} "
          f"{'UDP':>5s} frames")
    for d in dissections:
        print(
            f"{d.message:16s} {d.dns_bytes:5d} {d.security_bytes:5d} "
            f"{d.coap_bytes:5d} {d.udp_payload:5d} {list(d.frame_sizes)}"
            f"{'  FRAGMENTED' if d.fragmented else ''}"
        )
    return 0


def _cmd_resolve(args: argparse.Namespace) -> int:
    from repro.dns import RecordType, RecursiveResolver, Zone
    from repro.doc import DocClient, DocServer
    from repro.sim import Simulator
    from repro.stack import build_figure2_topology

    sim = Simulator(seed=args.seed)
    topo = build_figure2_topology(sim, loss=args.loss)
    zone = Zone()
    for index in range(args.names):
        zone.add_address(
            f"name{index:02d}.example.org", f"2001:db8::{index + 1}", ttl=300
        )
    DocServer(sim, topo.resolver_host.bind(5683), RecursiveResolver(zone))
    client = DocClient(
        sim, topo.clients[0].bind(), (topo.resolver_host.address, 5683)
    )

    def report(result, error) -> None:
        if error is not None:
            print(f"  FAILED: {error}")
        else:
            print(
                f"  {result.question.name:28s} -> "
                f"{', '.join(result.addresses):20s} "
                f"{result.resolution_time * 1000:7.1f} ms"
            )

    for index in range(args.names):
        sim.schedule(index * 0.5, client.resolve,
                     f"name{index:02d}.example.org", RecordType.AAAA, report)
    sim.run(until=60)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig, run_resolution_experiment
    from repro.experiments.metrics import fraction_below, percentile

    config = ExperimentConfig(
        transport=args.transport,
        num_queries=args.queries,
        loss=args.loss,
        l2_retries=args.l2_retries,
        seed=args.seed,
    )
    result = run_resolution_experiment(config)
    times = result.resolution_times
    print(f"transport:        {args.transport}")
    print(f"queries:          {len(result.outcomes)}")
    print(f"success rate:     {result.success_rate:.2%}")
    if times:
        print(f"< 250 ms:         {fraction_below(times, 0.25):.0%}")
        print(f"median:           {percentile(times, 50) * 1000:.1f} ms")
        print(f"p95:              {percentile(times, 95):.2f} s")
        print(f"max:              {max(times):.2f} s")
    print(f"frames @1hop:     {result.link.frames_1hop}")
    print(f"frames @2hop:     {result.link.frames_2hop}")
    return 0


def _cmd_memory(args: argparse.Namespace) -> int:
    from repro.memmodel import fig5_builds, fig8_builds

    print("Figure 5 (with CoAP example app):")
    for name, build in fig5_builds(with_get=True).items():
        print(f"  {name:10s} ROM {build.rom_kbytes:5.1f} kB   "
              f"RAM {build.ram_kbytes:4.1f} kB")
    print("Figure 8 (UDP/sock omitted):")
    for name, build in fig8_builds().items():
        print(f"  {name:10s} ROM {build.rom_kbytes:5.1f} kB")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.dns import (
        AAAAData,
        DNSClass,
        Flags,
        Message,
        Question,
        RecordType,
        ResourceRecord,
        make_query,
    )
    from repro.doc.cbor_format import encode_query, encode_response

    question = Question(args.name, RecordType.AAAA)
    wire_query = make_query(args.name, RecordType.AAAA, txid=0).encode()
    cbor_query = encode_query(question)
    response = Message(
        flags=Flags(qr=True),
        questions=(question,),
        answers=(
            ResourceRecord(args.name, RecordType.AAAA, DNSClass.IN, 300,
                           AAAAData("2001:db8::1")),
        ),
    )
    wire_response = response.encode()
    cbor_response = encode_response(response)
    print(f"name: {args.name} ({len(args.name)} chars)")
    print(f"query:    wire {len(wire_query):3d} B -> CBOR {len(cbor_query):3d} B "
          f"(-{100 * (1 - len(cbor_query) / len(wire_query)):.0f}%)")
    print(f"response: wire {len(wire_response):3d} B -> CBOR {len(cbor_response):3d} B "
          f"(-{100 * (1 - len(cbor_response) / len(wire_response)):.0f}%)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DNS over CoAP reproduction toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    dissect = subparsers.add_parser("dissect", help="Figure 6 packet dissection")
    dissect.add_argument(
        "--transport", default="coap",
        choices=["udp", "dtls", "coap", "coaps", "oscore"],
    )
    dissect.add_argument(
        "--method", default="fetch", choices=["fetch", "get", "post"]
    )
    dissect.set_defaults(func=_cmd_dissect)

    resolve = subparsers.add_parser("resolve", help="demo DoC resolution")
    resolve.add_argument("--names", type=int, default=4)
    resolve.add_argument("--loss", type=float, default=0.05)
    resolve.add_argument("--seed", type=int, default=1)
    resolve.set_defaults(func=_cmd_resolve)

    experiment = subparsers.add_parser("experiment", help="Figure 7-style run")
    experiment.add_argument(
        "--transport", default="coap",
        choices=["udp", "dtls", "coap", "coaps", "oscore"],
    )
    experiment.add_argument("--queries", type=int, default=50)
    experiment.add_argument("--loss", type=float, default=0.15)
    experiment.add_argument("--l2-retries", type=int, default=1)
    experiment.add_argument("--seed", type=int, default=1)
    experiment.set_defaults(func=_cmd_experiment)

    memory = subparsers.add_parser("memory", help="Figure 5/8 build sizes")
    memory.set_defaults(func=_cmd_memory)

    compress = subparsers.add_parser("compress", help="Section 7 CBOR sizes")
    compress.add_argument("--name", default="name0000.example-iot.org")
    compress.set_defaults(func=_cmd_compress)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
