"""The scenario engine: one runner for every transport and topology.

:class:`ScenarioRunner` replaces the bespoke Figure 2 harness: it
builds the scenario's topology, provisions and installs the transport
through the plugin registry, drives the declarative workload, and emits
the same :class:`~repro.experiments.resolution.ExperimentResult`
metrics structs the Figure 7/10/11/15 benchmarks consume.
:meth:`ScenarioRunner.sweep` enumerates a (transport × topology × loss)
grid in one call and returns per-cell metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.sim import Simulator
from repro.transports.registry import TransportEnv, registry

from .scenario import Scenario, ScenarioError, TopologySpec, WorkloadSpec

#: Name template producing the paper's median 24-character names.
NAME_TEMPLATE = "name{index:04d}.example-iot.org"


def build_workload_zone(workload: WorkloadSpec, rng):
    """Authoritative data for a workload: ``num_names`` 24-character
    names, each holding ``records_per_name`` records of every record
    type in the mix (so any drawn query type resolves)."""
    from repro.dns import RecordType, Zone
    from repro.dns.enums import DNSClass
    from repro.dns.rdata import AAAAData, AData
    from repro.dns.zone import ZoneRecord

    zone = Zone()
    for index in range(workload.num_names):
        name = NAME_TEMPLATE.format(index=index)
        ttl = rng.randint(*workload.ttl)
        for record_index in range(workload.records_per_name):
            for rtype in workload.record_types:
                if rtype == RecordType.A:
                    rdata = AData(f"192.0.2.{record_index + 1}")
                else:
                    rdata = AAAAData(
                        f"2001:db8::{index:x}:{record_index + 1:x}"
                    )
                zone.add(ZoneRecord(name, rtype, ttl, rdata, DNSClass.IN))
    return zone


@dataclass
class SweepCell:
    """One (transport × topology × loss) grid point and its result."""

    transport: str
    topology: str
    loss: float
    scenario: Scenario
    result: "ExperimentResult"

    @property
    def key(self) -> Tuple[str, str, float]:
        return (self.transport, self.topology, self.loss)

    def metrics(self) -> Dict[str, float]:
        """The per-cell summary a sweep table reports."""
        from repro.experiments.metrics import percentile

        result = self.result
        times = result.resolution_times
        return {
            "queries": len(result.outcomes),
            "success_rate": result.success_rate,
            "median_s": percentile(times, 50) if times else float("nan"),
            "p95_s": percentile(times, 95) if times else float("nan"),
            "max_s": max(times) if times else float("nan"),
            "frames_1hop": result.link.frames_1hop,
            "frames_2hop": result.link.frames_2hop,
            "bytes_1hop": result.link.bytes_1hop,
            "bytes_2hop": result.link.bytes_2hop,
        }


class SweepResult:
    """All cells of one sweep, addressable by (transport, topology, loss)."""

    def __init__(self, cells: List[SweepCell]) -> None:
        self.cells = cells
        self._by_key: Dict[Tuple[str, str, float], SweepCell] = {}
        for cell in cells:
            if cell.key in self._by_key:
                raise ScenarioError(f"duplicate sweep cell {cell.key}")
            self._by_key[cell.key] = cell

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[SweepCell]:
        return iter(self.cells)

    def cell(self, transport: str, topology: str, loss: float) -> SweepCell:
        try:
            return self._by_key[(transport, topology, loss)]
        except KeyError:
            raise KeyError(
                f"no sweep cell ({transport!r}, {topology!r}, {loss!r}); "
                f"have {sorted(self._by_key)}"
            ) from None

    def metrics(self) -> Dict[Tuple[str, str, float], Dict[str, float]]:
        """Per-cell metric dictionaries keyed by grid coordinates."""
        return {cell.key: cell.metrics() for cell in self.cells}


class ScenarioRunner:
    """Executes scenarios and scenario sweeps via the transport registry."""

    def run(self, scenario: Scenario, _config=None) -> "ExperimentResult":
        """Execute one scenario and gather its measurements.

        ``_config`` optionally stamps the result with the legacy
        ``ExperimentConfig`` that produced the scenario so existing
        consumers keep seeing the configuration type they passed in.
        """
        from repro.coap.proxy import ForwardProxy
        from repro.dns import RecursiveResolver
        from repro.experiments.resolution import (
            ExperimentResult,
            LinkUtilization,
            QueryOutcome,
        )

        profile = registry.get(scenario.transport)
        if not profile.simulatable:
            raise ScenarioError(
                f"transport {scenario.transport!r} is model-only and cannot run"
            )
        workload = scenario.workload
        sim = Simulator(seed=scenario.seed)
        topo = scenario.topology.build(sim)
        zone = build_workload_zone(workload, sim.rng)
        # A TTL *range* reproduces the paper's mocked-resolver behaviour:
        # every cache renewal at the resolver draws a fresh TTL, the churn
        # that distinguishes DoH-like from EOL-TTLs revalidation.
        ttl_range = workload.ttl if workload.ttl[0] != workload.ttl[1] else None
        resolver = RecursiveResolver(
            zone, upstream_ttl_range=ttl_range, rng=sim.rng
        )

        env = TransportEnv(
            sim=sim, topology=topo, resolver=resolver, scenario=scenario
        )
        profile.provision(env)
        env.server = profile.build_server(env)

        proxy = None
        if scenario.use_proxy:
            # The forward proxy is a plain-CoAP hop on the canonical port.
            from repro.transports.profiles import COAP_PORT

            proxy = ForwardProxy(
                sim,
                topo.forwarder.bind(COAP_PORT),
                topo.forwarder.bind(),
                env.server.endpoint,
                cache_entries=50,
            )
            env.target = (topo.forwarder.address, COAP_PORT)
        else:
            env.target = env.server.endpoint

        clients = [
            profile.build_client(env, node, index)
            for index, node in enumerate(topo.clients)
        ]

        # -- workload ------------------------------------------------------
        outcomes: List[QueryOutcome] = []
        arrivals = workload.arrival_times(sim.rng)

        def issue(index: int) -> None:
            client_index = index % len(clients)
            client = clients[client_index]
            name = NAME_TEMPLATE.format(index=index % workload.num_names)
            rtype = workload.draw_rtype(sim.rng)
            outcome = QueryOutcome(
                name=name,
                client=topo.clients[client_index].name,
                issued_at=sim.now,
                resolution_time=None,
                rtype=rtype,
            )
            outcomes.append(outcome)

            def on_done(result, error) -> None:
                if error is not None:
                    outcome.error = type(error).__name__
                    return
                outcome.resolution_time = sim.now - outcome.issued_at

            client.resolve(name, rtype, on_done)

        for index, at in enumerate(arrivals):
            sim.schedule_at(at, issue, index)

        sim.run(until=scenario.run_duration)

        # -- collect -------------------------------------------------------
        sniffer = topo.sniffer
        queries = sum(
            1 for r in sniffer.records if r.metadata.get("kind") == "query"
        )
        responses = sum(
            1 for r in sniffer.records if r.metadata.get("kind") == "response"
        )
        link = LinkUtilization(
            frames_1hop=topo.proxy_sink_frames(),
            frames_2hop=topo.client_proxy_frames(),
            bytes_1hop=topo.proxy_sink_bytes(),
            bytes_2hop=topo.client_proxy_bytes(),
            queries_frames=queries,
            responses_frames=responses,
            per_hop_frames={
                hop: topo.frames_at_hop(hop) for hop in range(1, topo.hops + 1)
            },
        )
        client_events = []
        for client in clients:
            coap = getattr(client, "coap", None)
            if coap is not None:
                client_events.extend(coap.events)

        return ExperimentResult(
            config=_config if _config is not None else scenario,
            outcomes=outcomes,
            link=link,
            client_events=client_events,
            proxy_cache_hits=(
                proxy.requests_served_from_cache if proxy is not None else 0
            ),
            proxy_revalidations=(
                proxy.requests_revalidated if proxy is not None else 0
            ),
            scenario=scenario,
        )

    def sweep(
        self,
        base: Optional[Scenario] = None,
        transports: Sequence[str] = ("udp", "coap", "oscore"),
        topologies: Sequence[Union[str, TopologySpec]] = ("figure2", "one-hop"),
        losses: Sequence[float] = (0.05, 0.25),
    ) -> SweepResult:
        """Run every (transport × topology × loss) grid cell.

        *topologies* accepts :class:`TopologySpec` instances or preset
        names (see :mod:`repro.scenarios.presets`); each cell derives
        its scenario from *base* (topology loss overridden per cell)
        and returns per-cell metrics via :class:`SweepResult`.
        """
        from .presets import get_topology

        base = base if base is not None else Scenario()
        specs = [
            spec if isinstance(spec, TopologySpec) else get_topology(spec)
            for spec in topologies
        ]
        # Reject colliding grid coordinates before spending any runtime.
        seen = set()
        for transport in transports:
            for spec in specs:
                for loss in losses:
                    key = (transport, spec.name, loss)
                    if key in seen:
                        raise ScenarioError(f"duplicate sweep cell {key}")
                    seen.add(key)
        cells: List[SweepCell] = []
        for transport in transports:
            for spec in specs:
                for loss in losses:
                    topology = replace(spec, loss=loss)
                    scenario = replace(
                        base,
                        name=f"{transport}/{spec.name}/loss={loss:g}",
                        transport=transport,
                        topology=topology,
                    )
                    cells.append(
                        SweepCell(
                            transport=transport,
                            topology=spec.name,
                            loss=loss,
                            scenario=scenario,
                            result=self.run(scenario),
                        )
                    )
        return SweepResult(cells)
