"""The scenario engine: one runner for every transport and topology.

:class:`ScenarioRunner` replaces the bespoke Figure 2 harness: it
builds the scenario's topology, provisions and installs the transport
through the plugin registry, drives the declarative workload, and emits
the same :class:`~repro.experiments.resolution.ExperimentResult`
metrics structs the Figure 7/10/11/15 benchmarks consume.
:meth:`ScenarioRunner.sweep` enumerates a
(transport × topology × loss × cache-placement × caching-scheme) grid
in one call and returns per-cell metrics, including the per-location
cache hit/stale/validation ratios of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cache import CacheStats
from repro.doc import CachingScheme
from repro.sim import Simulator
from repro.transports.registry import TransportEnv, registry

from .executors import SweepExecutor, get_executor
from .scenario import CachingSpec, Scenario, ScenarioError, TopologySpec, WorkloadSpec

#: Name template producing the paper's median 24-character names.
NAME_TEMPLATE = "name{index:04d}.example-iot.org"


def _cell_key(
    transport: str,
    topology: str,
    loss: float,
    placement: Optional[str] = None,
    scheme: Optional[str] = None,
) -> Tuple:
    """The grid coordinate of one sweep cell.

    The legacy three-tuple, extended by the cache axes only when they
    were actually swept — one definition shared by cell identity,
    duplicate detection, and lookup.
    """
    key: Tuple = (transport, topology, loss)
    if placement is not None:
        key += (placement,)
    if scheme is not None:
        key += (scheme,)
    return key


def build_workload_zone(workload: WorkloadSpec, rng, names=None):
    """Authoritative data for a workload: ``num_names`` 24-character
    names, each holding ``records_per_name`` records of every record
    type in the mix (so any drawn query type resolves).

    *names* overrides the template-generated universe (the live
    runtime passes its shared name list) while keeping the address
    layout — and therefore the answers — identical to simulated runs.
    """
    from repro.dns import RecordType, Zone
    from repro.dns.enums import DNSClass
    from repro.dns.rdata import AAAAData, AData
    from repro.dns.zone import ZoneRecord

    if names is None:
        names = [
            NAME_TEMPLATE.format(index=index)
            for index in range(workload.num_names)
        ]
    zone = Zone()
    for index, name in enumerate(names):
        ttl = rng.randint(*workload.ttl)
        for record_index in range(workload.records_per_name):
            for rtype in workload.record_types:
                if rtype == RecordType.A:
                    rdata = AData(f"192.0.2.{record_index + 1}")
                else:
                    rdata = AAAAData(
                        f"2001:db8::{index:x}:{record_index + 1:x}"
                    )
                zone.add(ZoneRecord(name, rtype, ttl, rdata, DNSClass.IN))
    return zone


# Module-level so SweepCell.metrics() stops re-importing per call —
# but placed *below* the symbols `repro.experiments.resolution` pulls
# from this module: the two modules import each other, and only this
# ordering keeps both import directions cycle-safe.
from repro.experiments.metrics import percentile  # noqa: E402


@dataclass
class SweepCell:
    """One grid point and its result.

    ``placement``/``scheme`` stay ``None`` unless the sweep enumerated
    the cache dimensions — the cell key (and with it the addressing of
    pre-existing sweeps) only grows when those axes are actually swept.
    """

    transport: str
    topology: str
    loss: float
    scenario: Scenario
    #: ``None`` while the cell is an enumerated-but-unrun spec (see
    #: :meth:`ScenarioRunner.enumerate_cells`).
    result: Optional["ExperimentResult"]
    placement: Optional[str] = None
    scheme: Optional[str] = None

    @property
    def key(self) -> Tuple:
        return _cell_key(
            self.transport, self.topology, self.loss,
            self.placement, self.scheme,
        )

    @property
    def key_string(self) -> str:
        """The grid coordinate as a stable ``/``-joined string — the
        JSON-object key of :meth:`SweepResult.to_json` (tuples cannot
        key a JSON object)."""
        parts = [self.transport, self.topology, f"{self.loss:g}"]
        if self.placement is not None:
            parts.append(self.placement)
        if self.scheme is not None:
            parts.append(self.scheme)
        return "/".join(parts)

    def metrics(self) -> Dict[str, float]:
        """The per-cell summary a sweep table reports.

        Besides the timing/link metrics, every cache location that was
        active in the run contributes its Figure 11 event counters and
        ratios under ``<location>_...`` keys (locations: ``client_dns``,
        ``client_coap``, ``proxy``, ``resolver``).
        """
        result = self.result
        times = result.resolution_times
        metrics = {
            "queries": len(result.outcomes),
            "success_rate": result.success_rate,
            "median_s": percentile(times, 50) if times else float("nan"),
            "p95_s": percentile(times, 95) if times else float("nan"),
            "p99_s": percentile(times, 99) if times else float("nan"),
            "mean_s": sum(times) / len(times) if times else float("nan"),
            "max_s": max(times) if times else float("nan"),
            "frames_1hop": result.link.frames_1hop,
            "frames_2hop": result.link.frames_2hop,
            "bytes_1hop": result.link.bytes_1hop,
            "bytes_2hop": result.link.bytes_2hop,
        }
        for location, stats in sorted(result.cache_stats.items()):
            prefix = location.replace("-", "_")
            metrics[f"{prefix}_hits"] = stats.hits
            metrics[f"{prefix}_misses"] = stats.misses
            metrics[f"{prefix}_stale_hits"] = stats.stale_hits
            metrics[f"{prefix}_validations"] = stats.validations
            metrics[f"{prefix}_validation_failures"] = stats.validation_failures
            metrics[f"{prefix}_hit_ratio"] = stats.hit_ratio
            metrics[f"{prefix}_stale_ratio"] = stats.stale_ratio
            metrics[f"{prefix}_validation_ratio"] = stats.validation_ratio
        return metrics

    def report(self) -> "Report":
        """This cell's result as a unified :class:`repro.api.Report`.

        The Report's spec records the cell's fully-derived scenario, so
        a sweep serialises as self-describing per-cell documents.
        """
        from repro.api.report import report_from_experiment_result
        from repro.api.spec import RunSpec

        return report_from_experiment_result(
            self.result,
            spec=RunSpec.from_scenario(self.scenario).to_dict(),
        )


class SweepResult:
    """All cells of one sweep, addressable by their grid coordinates.

    The coordinate is ``(transport, topology, loss)``, extended by
    placement and scheme labels when the sweep enumerated the cache
    dimensions.
    """

    def __init__(self, cells: List[SweepCell]) -> None:
        self.cells = cells
        self._by_key: Dict[Tuple, SweepCell] = {}
        for cell in cells:
            if cell.key in self._by_key:
                raise ScenarioError(f"duplicate sweep cell {cell.key}")
            self._by_key[cell.key] = cell

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[SweepCell]:
        return iter(self.cells)

    def cell(
        self,
        transport: str,
        topology: str,
        loss: float,
        placement: Optional[str] = None,
        scheme: Optional[str] = None,
    ) -> SweepCell:
        key = _cell_key(transport, topology, loss, placement, scheme)
        try:
            return self._by_key[key]
        except KeyError:
            raise KeyError(
                f"no sweep cell {key!r}; have {sorted(self._by_key)}"
            ) from None

    def metrics(self) -> Dict[Tuple, Dict[str, float]]:
        """Per-cell metric dictionaries keyed by grid coordinates.

        Tuple keys are the Python-side accessor; they cannot serialise
        to JSON — use :meth:`to_json` for that.
        """
        return {cell.key: cell.metrics() for cell in self.cells}

    def reports(self) -> Dict[str, "Report"]:
        """Per-cell unified Reports keyed by string grid coordinates."""
        return {cell.key_string: cell.report() for cell in self.cells}

    def to_json(self) -> Dict[str, object]:
        """The sweep as one ``json.dumps``-ready document.

        ``cells`` maps each cell's :attr:`~SweepCell.key_string` grid
        coordinate to its unified Report JSON; the envelope carries the
        shared ``report_version`` + provenance stamp.
        """
        from repro.api.report import REPORT_VERSION, provenance

        return {
            "report_version": REPORT_VERSION,
            "kind": "sweep",
            "provenance": provenance(),
            "cells": {
                cell.key_string: cell.report().to_json()
                for cell in self.cells
            },
        }


class ScenarioRunner:
    """Executes scenarios and scenario sweeps via the transport registry."""

    def run(
        self,
        scenario: Scenario,
        _config=None,
        *,
        frame_capture: str = "records",
    ) -> "ExperimentResult":
        """Execute one scenario and gather its measurements.

        ``_config`` optionally stamps the result with the legacy
        ``ExperimentConfig`` that produced the scenario so existing
        consumers keep seeing the configuration type they passed in.

        ``frame_capture`` selects the frame observer: ``"records"``
        keeps a full :class:`~repro.sim.trace.Sniffer` record list,
        ``"counts"`` attaches the cheaper counting tally — enough for
        every metric a sweep reports, and what :meth:`sweep` uses.
        """
        from repro.coap.proxy import ForwardProxy
        from repro.dns import RecursiveResolver
        from repro.experiments.resolution import (
            ExperimentResult,
            LinkUtilization,
            QueryOutcome,
        )

        profile = registry.get(scenario.transport)
        if not profile.simulatable:
            raise ScenarioError(
                f"transport {scenario.transport!r} is model-only and cannot run"
            )
        workload = scenario.workload
        sim = Simulator(seed=scenario.seed)
        topo = scenario.topology.build(sim, capture=frame_capture)
        zone = build_workload_zone(workload, sim.rng)
        # A TTL *range* reproduces the paper's mocked-resolver behaviour:
        # every cache renewal at the resolver draws a fresh TTL, the churn
        # that distinguishes DoH-like from EOL-TTLs revalidation.
        ttl_range = workload.ttl if workload.ttl[0] != workload.ttl[1] else None
        resolver = RecursiveResolver(
            zone, upstream_ttl_range=ttl_range, rng=sim.rng
        )

        env = TransportEnv(
            sim=sim, topology=topo, resolver=resolver, scenario=scenario
        )
        profile.provision(env)
        env.server = profile.build_server(env)

        caching = scenario.caching_spec
        proxy = None
        if scenario.use_proxy:
            # The forward proxy is a plain-CoAP hop on the canonical port;
            # placement off degrades it to an opaque forwarder.
            from repro.transports.profiles import COAP_PORT

            proxy = ForwardProxy(
                sim,
                topo.forwarder.bind(COAP_PORT),
                topo.forwarder.bind(),
                env.server.endpoint,
                cache_entries=caching.proxy_capacity if caching.proxy else 0,
            )
            env.target = (topo.forwarder.address, COAP_PORT)
        else:
            env.target = env.server.endpoint

        clients = [
            profile.build_client(env, node, index)
            for index, node in enumerate(topo.clients)
        ]

        # -- workload ------------------------------------------------------
        outcomes: List[QueryOutcome] = []
        arrivals = workload.arrival_times(sim.rng)

        def issue(index: int) -> None:
            client_index = index % len(clients)
            client = clients[client_index]
            name = NAME_TEMPLATE.format(
                index=workload.draw_name_index(sim.rng, index)
            )
            rtype = workload.draw_rtype(sim.rng)
            outcome = QueryOutcome(
                name=name,
                client=topo.clients[client_index].name,
                issued_at=sim.now,
                resolution_time=None,
                rtype=rtype,
            )
            outcomes.append(outcome)

            def on_done(result, error) -> None:
                if error is not None:
                    outcome.error = type(error).__name__
                    return
                outcome.resolution_time = sim.now - outcome.issued_at

            client.resolve(name, rtype, on_done)

        sim.schedule_many(
            (at, issue, (index,)) for index, at in enumerate(arrivals)
        )

        sim.run(until=scenario.run_duration)

        # -- collect -------------------------------------------------------
        kinds = topo.sniffer.by_kind()
        queries = kinds.get("query", 0)
        responses = kinds.get("response", 0)
        link = LinkUtilization(
            frames_1hop=topo.proxy_sink_frames(),
            frames_2hop=topo.client_proxy_frames(),
            bytes_1hop=topo.proxy_sink_bytes(),
            bytes_2hop=topo.client_proxy_bytes(),
            queries_frames=queries,
            responses_frames=responses,
            per_hop_frames={
                hop: topo.frames_at_hop(hop) for hop in range(1, topo.hops + 1)
            },
        )
        client_events = []
        for client in clients:
            coap = getattr(client, "coap", None)
            if coap is not None:
                client_events.extend(coap.events)

        # -- per-location cache stats (Figure 11) -------------------------
        cache_stats: Dict[str, CacheStats] = {}

        def pool(location: str, cache) -> None:
            if cache is None:
                return
            cache_stats.setdefault(location, CacheStats()).merge(cache.stats)

        for client in clients:
            coap = getattr(client, "coap", None)
            pool("client-coap", getattr(coap, "cache", None))
            stub = getattr(client, "stub", None)
            pool("client-dns", getattr(stub, "cache", None))
        if proxy is not None:
            pool("proxy", proxy.cache)
        pool("resolver", resolver.cache)

        return ExperimentResult(
            config=_config if _config is not None else scenario,
            outcomes=outcomes,
            link=link,
            client_events=client_events,
            proxy_cache_hits=(
                proxy.requests_served_from_cache if proxy is not None else 0
            ),
            proxy_revalidations=(
                proxy.requests_revalidated if proxy is not None else 0
            ),
            scenario=scenario,
            cache_stats=cache_stats,
        )

    def run_report(
        self,
        scenario: Scenario,
        *,
        frame_capture: str = "records",
    ) -> "Report":
        """Execute one scenario and return the unified
        :class:`repro.api.Report` (the native result vocabulary of the
        façade; :meth:`run` keeps returning the raw
        :class:`ExperimentResult` for metric-level consumers)."""
        from repro.api.report import report_from_experiment_result
        from repro.api.spec import RunSpec

        result = self.run(scenario, frame_capture=frame_capture)
        return report_from_experiment_result(
            result, spec=RunSpec.from_scenario(scenario).to_dict()
        )

    def sweep(
        self,
        base: Optional[Scenario] = None,
        transports: Sequence[str] = ("udp", "coap", "oscore"),
        topologies: Sequence[Union[str, TopologySpec]] = ("figure2", "one-hop"),
        losses: Sequence[float] = (0.05, 0.25),
        cache_placements: Optional[Sequence[Union[str, CachingSpec]]] = None,
        schemes: Optional[Sequence[Union[str, CachingScheme]]] = None,
        executor: Union[str, SweepExecutor, None] = None,
        workers: Optional[int] = None,
    ) -> SweepResult:
        """Run every grid cell of the requested dimensions.

        *topologies* accepts :class:`TopologySpec` instances or preset
        names (see :mod:`repro.scenarios.presets`); each cell derives
        its scenario from *base* (topology loss overridden per cell)
        and returns per-cell metrics via :class:`SweepResult`.

        *cache_placements* and *schemes* are optional extra axes (the
        Section 6.1 caching study). A placement is a
        :class:`CachingSpec` or a ``+``-joined placement string
        (``"none"``, ``"client-coap+proxy"``, ``"all"`` — see
        :meth:`CachingSpec.from_placement`); a placement that enables
        the proxy cache also enables the forward proxy for that cell,
        which requires every swept transport to be CoAP-based. A scheme
        is a :class:`~repro.doc.CachingScheme` or its value
        (``"doh-like"``/``"eol-ttls"``). When either axis is left
        ``None``, the base scenario's configuration applies and the
        cell keys keep their legacy three-tuple shape.

        Cells are independent simulations, so the grid can fan out:
        *executor* selects a registered
        :mod:`~repro.scenarios.executors` backend (``"serial"`` or
        ``"process"``) or passes an executor instance; leaving it
        ``None`` picks ``process`` when ``workers`` > 1 and ``serial``
        otherwise. Results are merged in grid-enumeration order and the
        per-cell metrics are bit-identical across executors — every
        cell seeds its own simulator.
        """
        cells = self.enumerate_cells(
            base, transports, topologies, losses, cache_placements, schemes
        )
        runner = get_executor(executor, workers)
        return SweepResult(runner.map(_execute_cell, cells))

    def enumerate_cells(
        self,
        base: Optional[Scenario] = None,
        transports: Sequence[str] = ("udp", "coap", "oscore"),
        topologies: Sequence[Union[str, TopologySpec]] = ("figure2", "one-hop"),
        losses: Sequence[float] = (0.05, 0.25),
        cache_placements: Optional[Sequence[Union[str, CachingSpec]]] = None,
        schemes: Optional[Sequence[Union[str, CachingScheme]]] = None,
    ) -> List[SweepCell]:
        """The sweep grid as result-less :class:`SweepCell` specs.

        Each cell carries its fully-derived scenario but has not run
        yet (``result=None``); the cells are pure, picklable values in
        deterministic grid order, ready for any executor. Colliding
        grid coordinates are rejected before any runtime is spent.
        """
        from .presets import get_topology

        base = base if base is not None else Scenario()
        specs = [
            spec if isinstance(spec, TopologySpec) else get_topology(spec)
            for spec in topologies
        ]
        placements = self._resolve_placements(cache_placements, transports)
        scheme_values = self._resolve_schemes(schemes)
        seen = set()
        for key in self._grid_keys(transports, specs, losses, placements,
                                   scheme_values):
            if key in seen:
                raise ScenarioError(f"duplicate sweep cell {key}")
            seen.add(key)
        return [
            self._build_cell(
                base, transport, spec, loss,
                placement_label, placement, scheme_label, scheme,
            )
            for transport in transports
            for spec in specs
            for loss in losses
            for placement_label, placement in placements
            for scheme_label, scheme in scheme_values
        ]

    @staticmethod
    def _resolve_placements(cache_placements, transports):
        """Normalise the placement axis to (label, spec-or-None) pairs."""
        if cache_placements is None:
            return [(None, None)]
        placements = []
        for item in cache_placements:
            spec = (
                item
                if isinstance(item, CachingSpec)
                else CachingSpec.from_placement(item)
            )
            if spec.proxy:
                for transport in transports:
                    if not registry.get(transport).coap_based:
                        raise ScenarioError(
                            f"cache placement {spec.placement_label()!r} "
                            f"enables the forward proxy, which transport "
                            f"{transport!r} cannot traverse — sweep "
                            f"CoAP-based transports only"
                        )
            placements.append((spec.placement_label(), spec))
        return placements

    @staticmethod
    def _resolve_schemes(schemes):
        """Normalise the scheme axis to (label, scheme-or-None) pairs."""
        if schemes is None:
            return [(None, None)]
        resolved = []
        for item in schemes:
            scheme = item if isinstance(item, CachingScheme) else None
            if scheme is None:
                try:
                    scheme = CachingScheme(str(item))
                except ValueError:
                    known = ", ".join(s.value for s in CachingScheme)
                    raise ScenarioError(
                        f"unknown caching scheme {item!r} (known: {known})"
                    ) from None
            resolved.append((scheme.value, scheme))
        return resolved

    @staticmethod
    def _grid_keys(transports, specs, losses, placements, scheme_values):
        for transport in transports:
            for spec in specs:
                for loss in losses:
                    for placement_label, _ in placements:
                        for scheme_label, _ in scheme_values:
                            yield _cell_key(
                                transport, spec.name, loss,
                                placement_label, scheme_label,
                            )

    def _build_cell(
        self, base, transport, spec, loss,
        placement_label, placement, scheme_label, scheme,
    ) -> SweepCell:
        topology = replace(spec, loss=loss)
        name = f"{transport}/{spec.name}/loss={loss:g}"
        scenario = replace(
            base, name=name, transport=transport, topology=topology
        )
        if placement is not None:
            name += f"/cache={placement_label}"
            scenario = replace(
                scenario,
                caching=placement,
                # Caching *at* the proxy implies having one; a placement
                # without it keeps the base's (possibly opaque) forwarder.
                use_proxy=scenario.use_proxy or placement.proxy,
            )
        if scheme is not None:
            name += f"/scheme={scheme_label}"
            scenario = replace(scenario, scheme=scheme)
            if scenario.caching is not None and scenario.caching.scheme is not None:
                # An explicit spec scheme would override the swept axis
                # (caching_spec gives it precedence); defer it instead.
                scenario = replace(
                    scenario, caching=replace(scenario.caching, scheme=None)
                )
        scenario = replace(scenario, name=name)
        return SweepCell(
            transport=transport,
            topology=spec.name,
            loss=loss,
            scenario=scenario,
            result=None,
            placement=placement_label,
            scheme=scheme_label,
        )


def _execute_cell(cell: SweepCell) -> SweepCell:
    """Run one enumerated cell (module-level so executors can pickle it).

    Sweep metrics read only aggregated frame tallies, never individual
    frame records, so cells run with the cheap counting observer.
    """
    cell.result = ScenarioRunner().run(cell.scenario, frame_capture="counts")
    return cell
