"""Pluggable executors for scenario sweeps.

A sweep is an embarrassingly parallel grid: every cell is a pure
function of its :class:`~repro.scenarios.scenario.Scenario` (each cell
builds its own :class:`~repro.sim.Simulator` with its own seeded RNG),
so cells can run in any order — or concurrently — without affecting
each other's results. An executor maps a cell-running function over the
cell specs and returns the results **in input order**, which is what
keeps :class:`~repro.scenarios.runner.SweepResult` bit-identical across
executors.

Two executors ship by default:

* ``serial`` — plain in-process iteration (no overhead, the default);
* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor` fan
  out over ``workers`` processes. Cell specs and results cross process
  boundaries, so both must be picklable (scenarios and result structs
  are plain dataclasses, so they are).

Register additional executors (e.g. a cluster dispatcher) with
:func:`register_executor`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class ExecutorError(ValueError):
    """An unknown executor name or invalid executor configuration."""


class SweepExecutor:
    """Interface: map *fn* over *items*, results in input order."""

    name = "abstract"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        raise NotImplementedError


class SerialExecutor(SweepExecutor):
    """Run every cell in-process, one after the other."""

    name = "serial"

    def __init__(self, workers: int = 1) -> None:
        # *workers* is accepted (and ignored) so every executor shares
        # one construction signature.
        self.workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ProcessExecutor(SweepExecutor):
    """Fan cells out over a :class:`ProcessPoolExecutor`.

    ``Executor.map`` yields results in submission order regardless of
    completion order, so the merged sweep is deterministic.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ExecutorError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        # A pool of one (or one item) degrades to the serial path — no
        # point paying process startup for it.
        if self.workers == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
            return list(pool.map(fn, items))


_EXECUTORS: Dict[str, Callable[[Optional[int]], SweepExecutor]] = {}


def register_executor(
    name: str, factory: Callable[[Optional[int]], SweepExecutor]
) -> None:
    """Register an executor *factory* (called as ``factory(workers)``)."""
    if name in _EXECUTORS:
        raise ExecutorError(f"executor {name!r} already registered")
    _EXECUTORS[name] = factory


register_executor("serial", lambda workers: SerialExecutor())
register_executor("process", lambda workers: ProcessExecutor(workers))


def executor_names() -> List[str]:
    return sorted(_EXECUTORS)


def get_executor(
    executor: "str | SweepExecutor | None" = None,
    workers: Optional[int] = None,
) -> SweepExecutor:
    """Resolve an executor selection.

    *executor* may be an executor instance (returned as-is), a
    registered name, or ``None`` — in which case ``workers`` picks:
    ``workers`` in (``None``, 0, 1) selects ``serial``, anything larger
    selects ``process`` with that many workers.
    """
    if isinstance(executor, SweepExecutor):
        return executor
    if executor is None:
        if workers is None or workers <= 1:
            return SerialExecutor()
        return ProcessExecutor(workers)
    try:
        factory = _EXECUTORS[executor]
    except KeyError:
        raise ExecutorError(
            f"unknown executor {executor!r} "
            f"(known: {', '.join(executor_names())})"
        ) from None
    return factory(workers)
