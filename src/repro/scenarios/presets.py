"""Named topologies and scenarios, plus a ``key=value`` spec parser.

Presets give the CLI and tests stable names for common configurations;
:func:`scenario_from_spec` turns strings like
``"three-hop,transport=oscore,loss=0.1,queries=30"`` into a
:class:`Scenario` (first a preset name, then comma-separated
overrides).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.dns import RecordType
from repro.doc import CachingScheme

from .scenario import (
    CachingSpec,
    Scenario,
    ScenarioError,
    TopologySpec,
    WorkloadSpec,
)

TOPOLOGIES: Dict[str, TopologySpec] = {
    "figure2": TopologySpec(name="figure2"),
    "one-hop": TopologySpec(name="one-hop", hops=1),
    "three-hop": TopologySpec(name="three-hop", hops=3),
    "dense": TopologySpec(name="dense", clients=4),
    "lossy": TopologySpec(name="lossy", loss=0.25, l2_retries=1),
    "all-wireless": TopologySpec(name="all-wireless", wired_tail=False),
}

SCENARIOS: Dict[str, Scenario] = {
    "figure2": Scenario(name="figure2"),
    "figure7": Scenario(
        name="figure7",
        topology=replace(TOPOLOGIES["figure2"], loss=0.25, l2_retries=1),
    ),
    "one-hop": Scenario(name="one-hop", topology=TOPOLOGIES["one-hop"]),
    "three-hop": Scenario(name="three-hop", topology=TOPOLOGIES["three-hop"]),
    "dense": Scenario(name="dense", topology=TOPOLOGIES["dense"]),
    "all-wireless": Scenario(
        name="all-wireless", topology=TOPOLOGIES["all-wireless"]
    ),
    "burst": Scenario(name="burst", workload=WorkloadSpec(burst_size=5)),
    "bursty": Scenario(
        name="bursty",
        workload=WorkloadSpec(arrival="bursty", burst_on=1.0, burst_off=4.0),
    ),
    "zipf": Scenario(name="zipf", workload=WorkloadSpec(zipf_alpha=1.0)),
    "mixed-records": Scenario(
        name="mixed-records",
        workload=WorkloadSpec(
            rtype_mix=((int(RecordType.A), 0.5), (int(RecordType.AAAA), 0.5))
        ),
    ),
}


def get_topology(name: str) -> TopologySpec:
    try:
        return TOPOLOGIES[name]
    except KeyError:
        raise ScenarioError(
            f"unknown topology {name!r} (known: {', '.join(sorted(TOPOLOGIES))})"
        ) from None


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r} (known: {', '.join(sorted(SCENARIOS))})"
        ) from None


_RTYPES = {"a": int(RecordType.A), "aaaa": int(RecordType.AAAA)}


def _parse_bool(value: str) -> bool:
    lowered = value.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ScenarioError(f"not a boolean: {value!r}")


def scenario_from_spec(
    spec: str, base: Optional[Scenario] = None
) -> Scenario:
    """Build a scenario from ``"[preset][,key=value]..."``.

    Topology keys: ``hops``, ``clients``, ``loss``, ``retries``,
    ``wired``. Workload keys: ``queries``, ``names``, ``rate``,
    ``burst``, ``records``, ``rtype`` (``a``/``aaaa``/``mixed``),
    ``arrival`` (``poisson``/``bursty``), ``burst-on``/``burst-off``
    (seconds of the on/off modulation), ``zipf`` (the popularity α).
    Scenario keys: ``transport``, ``seed``, ``duration``, ``proxy``,
    ``cache`` (a ``+``-joined placement such as
    ``client-dns+client-coap+proxy``, or ``all``/``none`` — a placement
    naming the proxy also enables it), ``scheme``
    (``doh-like``/``eol-ttls``).
    """
    scenario = base if base is not None else Scenario()
    parts = [part.strip() for part in spec.split(",") if part.strip()]
    if parts and "=" not in parts[0]:
        scenario = get_scenario(parts.pop(0))
    topology, workload = scenario.topology, scenario.workload
    scenario_fields: Dict[str, object] = {}
    for part in parts:
        if "=" not in part:
            raise ScenarioError(f"expected key=value, got {part!r}")
        key, value = (token.strip() for token in part.split("=", 1))
        if key == "hops":
            topology = replace(topology, hops=int(value))
        elif key == "clients":
            topology = replace(topology, clients=int(value))
        elif key == "loss":
            topology = replace(topology, loss=float(value))
        elif key == "retries":
            topology = replace(topology, l2_retries=int(value))
        elif key == "wired":
            topology = replace(topology, wired_tail=_parse_bool(value))
        elif key == "queries":
            workload = replace(workload, num_queries=int(value))
        elif key == "names":
            workload = replace(workload, num_names=int(value))
        elif key == "rate":
            workload = replace(workload, query_rate=float(value))
        elif key == "burst":
            workload = replace(workload, burst_size=int(value))
        elif key == "records":
            workload = replace(workload, records_per_name=int(value))
        elif key == "arrival":
            workload = replace(workload, arrival=value.lower())
        elif key == "burst-on":
            workload = replace(workload, burst_on=float(value))
        elif key == "burst-off":
            workload = replace(workload, burst_off=float(value))
        elif key == "zipf":
            workload = replace(workload, zipf_alpha=float(value))
        elif key == "rtype":
            lowered = value.lower()
            if lowered == "mixed":
                mix = ((_RTYPES["a"], 0.5), (_RTYPES["aaaa"], 0.5))
            elif lowered in _RTYPES:
                mix = ((_RTYPES[lowered], 1.0),)
            else:
                raise ScenarioError(f"unknown rtype {value!r}")
            workload = replace(workload, rtype_mix=mix)
        elif key == "transport":
            scenario_fields["transport"] = value
        elif key == "seed":
            scenario_fields["seed"] = int(value)
        elif key == "duration":
            scenario_fields["run_duration"] = float(value)
        elif key == "proxy":
            scenario_fields["use_proxy"] = _parse_bool(value)
        elif key == "cache":
            placement = CachingSpec.from_placement(value)
            scenario_fields["caching"] = placement
            if placement.proxy:
                # Caching at the proxy requires having one.
                scenario_fields["use_proxy"] = True
        elif key == "scheme":
            try:
                scenario_fields["scheme"] = CachingScheme(value.lower())
            except ValueError:
                known = ", ".join(s.value for s in CachingScheme)
                raise ScenarioError(
                    f"unknown caching scheme {value!r} (known: {known})"
                ) from None
        else:
            raise ScenarioError(f"unknown scenario key {key!r}")
    if "scheme" in scenario_fields:
        # A caching spec carrying its own scheme would override the
        # freshly set scenario scheme; defer it to the scenario's.
        caching = scenario_fields.get("caching", scenario.caching)
        if caching is not None and caching.scheme is not None:
            scenario_fields["caching"] = replace(caching, scheme=None)
    return replace(
        scenario, topology=topology, workload=workload, **scenario_fields
    )
