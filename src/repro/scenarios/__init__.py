"""Declarative scenario engine.

* :mod:`repro.scenarios.scenario` — :class:`Scenario`,
  :class:`TopologySpec`, :class:`WorkloadSpec`, :class:`CachingSpec`:
  what to run;
* :mod:`repro.scenarios.runner` — :class:`ScenarioRunner`: how to run
  it (including ``sweep`` over transport × topology × loss ×
  cache-placement × scheme grids);
* :mod:`repro.scenarios.presets` — named topologies/scenarios and the
  ``key=value`` spec parser behind the CLI's ``--scenario`` flag.
"""

from .executors import (
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    SweepExecutor,
    executor_names,
    get_executor,
    register_executor,
)
from .scenario import (
    CachingSpec,
    Scenario,
    ScenarioError,
    TopologySpec,
    WorkloadSpec,
)
from .runner import (
    NAME_TEMPLATE,
    ScenarioRunner,
    SweepCell,
    SweepResult,
    build_workload_zone,
)
from .presets import (
    SCENARIOS,
    TOPOLOGIES,
    get_scenario,
    get_topology,
    scenario_from_spec,
)

__all__ = [
    "CachingSpec",
    "ExecutorError",
    "NAME_TEMPLATE",
    "ProcessExecutor",
    "SCENARIOS",
    "Scenario",
    "ScenarioError",
    "ScenarioRunner",
    "SerialExecutor",
    "SweepCell",
    "SweepExecutor",
    "SweepResult",
    "TOPOLOGIES",
    "TopologySpec",
    "WorkloadSpec",
    "build_workload_zone",
    "executor_names",
    "get_executor",
    "get_topology",
    "register_executor",
    "scenario_from_spec",
]
