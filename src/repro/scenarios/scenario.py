"""Declarative scenario configuration.

A :class:`Scenario` bundles everything one run needs: which transport
(by registry name), the topology shape (:class:`TopologySpec` — hop
count, client count, link loss, wired/wireless mix), and the workload
(:class:`WorkloadSpec` — Poisson rate, name count, record-type mix,
burst vs. steady arrivals), plus the caching/proxy knobs of the paper's
ablations. Scenarios are frozen dataclasses: derive variants with
:func:`dataclasses.replace`, or let :class:`ScenarioRunner.sweep`
enumerate (transport × topology × loss) grids.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.coap.codes import Code
from repro.dns import RecordType
from repro.doc import CachingScheme


class ScenarioError(ValueError):
    """An inconsistent scenario configuration."""


#: Placement tokens accepted by :meth:`CachingSpec.from_placement`.
_PLACEMENTS = ("client-dns", "client-coap", "proxy")


@dataclass(frozen=True)
class CachingSpec:
    """Where responses are cached, and how (the Section 6.1 dimension).

    One spec fixes the per-role cache *placement* (client DNS cache,
    client CoAP cache, forward-proxy cache — each on or off), the
    per-role capacities (Table 6 defaults: 8/8/50), and optionally the
    TTL↔Max-Age :class:`~repro.doc.CachingScheme`; ``scheme=None``
    defers to the scenario's own ``scheme`` field. The resolver's DNS
    cache is always present (it *is* the resolver, Figure 2's *S*).
    """

    client_dns: bool = False
    client_coap: bool = False
    proxy: bool = True
    client_dns_capacity: int = 8
    client_coap_capacity: int = 8
    proxy_capacity: int = 50
    scheme: Optional[CachingScheme] = None

    def __post_init__(self) -> None:
        for role in ("client_dns", "client_coap", "proxy"):
            capacity = getattr(self, f"{role}_capacity")
            if capacity < 1:
                raise ScenarioError(
                    f"{role}_capacity must be >= 1, got {capacity}"
                )

    @classmethod
    def from_placement(cls, placement: str, **overrides) -> "CachingSpec":
        """Parse ``"client-dns+client-coap+proxy"`` / ``"all"`` / ``"none"``.

        The string lists the enabled cache locations joined by ``+``;
        keyword *overrides* pass through to the constructor (e.g.
        ``proxy_capacity=100``).
        """
        normalized = placement.strip().lower()
        enabled = {name: False for name in _PLACEMENTS}
        if normalized == "all":
            enabled = {name: True for name in _PLACEMENTS}
        elif normalized != "none":
            for token in normalized.split("+"):
                token = token.strip()
                if token not in enabled:
                    raise ScenarioError(
                        f"unknown cache placement {token!r} "
                        f"(known: {', '.join(_PLACEMENTS)}, all, none)"
                    )
                enabled[token] = True
        return cls(
            client_dns=enabled["client-dns"],
            client_coap=enabled["client-coap"],
            proxy=enabled["proxy"],
            **overrides,
        )

    def placement_label(self) -> str:
        """The canonical ``+``-joined placement string (``"none"`` if
        every location is off)."""
        parts = [
            name
            for name, on in zip(
                _PLACEMENTS, (self.client_dns, self.client_coap, self.proxy)
            )
            if on
        ]
        return "+".join(parts) if parts else "none"


@dataclass(frozen=True)
class TopologySpec:
    """Shape of the network a scenario runs on.

    ``hops`` counts wireless hops between a client and the border
    router (the paper's Figure 2 deployment is ``hops=2``); with
    ``wired_tail`` the resolver host sits behind an extra wired link,
    without it the border router hosts the resolver itself.
    """

    name: str = "figure2"
    hops: int = 2
    clients: int = 2
    loss: float = 0.05
    l2_retries: int = 3
    wired_tail: bool = True

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ScenarioError(f"hops must be >= 1, got {self.hops}")
        if self.clients < 1:
            raise ScenarioError(f"clients must be >= 1, got {self.clients}")
        if not 0.0 <= self.loss < 1.0:
            raise ScenarioError(f"loss must be in [0, 1), got {self.loss}")
        if self.l2_retries < 0:
            raise ScenarioError("l2_retries must be >= 0")

    def build(self, sim, capture: str = "records"):
        """Instantiate this topology on *sim*.

        *capture* selects the frame observer (``"records"`` for a full
        sniffer, ``"counts"`` for the aggregate-only tally).
        """
        from repro.stack import build_linear_topology

        return build_linear_topology(
            sim,
            hops=self.hops,
            clients=self.clients,
            loss=self.loss,
            l2_retries=self.l2_retries,
            wired_tail=self.wired_tail,
            capture=capture,
        )


#: Arrival-process names accepted by :attr:`WorkloadSpec.arrival`.
_ARRIVALS = ("poisson", "bursty")


@dataclass(frozen=True)
class WorkloadSpec:
    """Query workload driven against the scenario's clients.

    ``rtype_mix`` is a weighted mix of DNS record types; every name in
    the generated zone carries records of every type in the mix, so any
    draw resolves. ``burst_size > 1`` switches from steady Poisson
    arrivals to bursts: arrival instants stay Poisson but each instant
    issues a whole burst back-to-back (one query per client round-robin).

    ``arrival`` selects the arrival process: steady ``"poisson"``
    (default) or ``"bursty"`` — an on/off modulated Poisson process
    (``burst_on`` seconds of elevated-rate arrivals, ``burst_off``
    seconds of silence, same long-run average rate). ``zipf_alpha``
    turns on Zipf(α) name popularity: queries draw names by popularity
    rank instead of cycling through them round-robin. Both simulated
    sweeps (:class:`~repro.scenarios.ScenarioRunner`) and the live
    load generator (:mod:`repro.live.loadgen`) honour these knobs, so
    one spec describes a workload on either substrate.
    """

    num_queries: int = 50
    num_names: int = 50
    records_per_name: int = 1
    query_rate: float = 5.0
    rtype_mix: Tuple[Tuple[int, float], ...] = ((int(RecordType.AAAA), 1.0),)
    burst_size: int = 1
    ttl: Tuple[int, int] = (300, 300)
    start: float = 0.1
    arrival: str = "poisson"
    burst_on: float = 1.0
    burst_off: float = 4.0
    zipf_alpha: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise ScenarioError("num_queries must be >= 1")
        if self.num_names < 1:
            raise ScenarioError("num_names must be >= 1")
        if self.query_rate <= 0:
            raise ScenarioError("query_rate must be positive")
        if self.burst_size < 1:
            raise ScenarioError("burst_size must be >= 1")
        if not self.rtype_mix:
            raise ScenarioError("rtype_mix must not be empty")
        if any(weight <= 0 for _, weight in self.rtype_mix):
            raise ScenarioError("rtype_mix weights must be positive")
        if self.ttl[0] > self.ttl[1]:
            raise ScenarioError(f"ttl range reversed: {self.ttl}")
        if self.arrival not in _ARRIVALS:
            raise ScenarioError(
                f"unknown arrival process {self.arrival!r} "
                f"(known: {', '.join(_ARRIVALS)})"
            )
        if self.burst_on <= 0:
            raise ScenarioError("burst_on must be positive")
        if self.burst_off < 0:
            raise ScenarioError("burst_off must be >= 0")
        if self.zipf_alpha is not None and self.zipf_alpha < 0:
            raise ScenarioError("zipf_alpha must be >= 0")

    @property
    def record_types(self) -> Tuple[int, ...]:
        return tuple(rtype for rtype, _ in self.rtype_mix)

    def _instants(self, rng: random.Random, count: int) -> List[float]:
        from repro.sim import bursty_arrival_times, poisson_arrival_times

        if self.arrival == "bursty":
            return bursty_arrival_times(
                rng, self.query_rate, count,
                on_duration=self.burst_on, off_duration=self.burst_off,
                start=self.start,
            )
        return poisson_arrival_times(
            rng, self.query_rate, count, start=self.start
        )

    def arrival_times(self, rng: random.Random) -> List[float]:
        """The run's query arrival instants (one per query)."""
        if self.burst_size == 1:
            return self._instants(rng, self.num_queries)
        instants = self._instants(
            rng, math.ceil(self.num_queries / self.burst_size)
        )
        times = [t for t in instants for _ in range(self.burst_size)]
        return times[: self.num_queries]

    def draw_name_index(self, rng: random.Random, sequence_index: int) -> int:
        """The name (by index) that query *sequence_index* asks for.

        Without ``zipf_alpha`` this is the legacy round-robin walk over
        the name universe (no RNG draw, bit-identical to historical
        runs); with it, a Zipf(α) popularity draw.
        """
        if self.zipf_alpha is None:
            return sequence_index % self.num_names
        from repro.sim import sample_zipf_many, zipf_cumulative

        # The cumulative table is cached in repro.sim.workload (one
        # O(n) accumulate per (count, alpha), then O(log n) per draw —
        # this sits on the loadgen hot path). Consumes exactly one
        # rng.random() per draw, the same stream rng.choices() would.
        cumulative = zipf_cumulative(self.num_names, self.zipf_alpha)
        return sample_zipf_many(rng, cumulative, 1)[0]

    def draw_name_indices(
        self, rng: random.Random, count: int, start_index: int = 0
    ) -> List[int]:
        """Bulk form of :meth:`draw_name_index` for *count* queries.

        Advances the RNG exactly as *count* sequential single draws
        would (zero draws round-robin, one ``rng.random()`` per Zipf
        draw), so batched callers — the fleet engine — stay on the
        same popularity stream as per-query ones.
        """
        if count < 0:
            raise ScenarioError("count must be >= 0")
        if self.zipf_alpha is None:
            return [
                (start_index + offset) % self.num_names
                for offset in range(count)
            ]
        from repro.sim import sample_zipf_many, zipf_cumulative

        cumulative = zipf_cumulative(self.num_names, self.zipf_alpha)
        return sample_zipf_many(rng, cumulative, count)

    def draw_rtype(self, rng: random.Random) -> int:
        """One record type from the mix (no RNG draw for pure mixes)."""
        if len(self.rtype_mix) == 1:
            return self.rtype_mix[0][0]
        types = [rtype for rtype, _ in self.rtype_mix]
        weights = [weight for _, weight in self.rtype_mix]
        return rng.choices(types, weights=weights, k=1)[0]


@dataclass(frozen=True)
class Scenario:
    """One fully-specified run: transport × topology × workload.

    Cache placement is configured either through the legacy boolean
    fields (``client_coap_cache``/``client_dns_cache``, the proxy cache
    implied by ``use_proxy``) or, preferably, through an explicit
    ``caching`` :class:`CachingSpec`. When ``caching`` is given it is
    authoritative for placement and capacities; read the resolved view
    via :attr:`caching_spec` (never the raw fields).
    """

    name: str = "default"
    transport: str = "coap"
    topology: TopologySpec = TopologySpec()
    workload: WorkloadSpec = WorkloadSpec()
    method: Code = Code.FETCH
    scheme: CachingScheme = CachingScheme.EOL_TTLS
    use_proxy: bool = False
    client_coap_cache: bool = False
    client_dns_cache: bool = False
    caching: Optional[CachingSpec] = None
    block_size: Optional[int] = None
    seed: int = 1
    run_duration: float = 300.0

    def __post_init__(self) -> None:
        from repro.transports.registry import registry

        profile = registry.get(self.transport)
        if not profile.simulatable:
            raise ScenarioError(
                f"transport {self.transport!r} is model-only and cannot run"
            )
        if self.use_proxy and not profile.coap_based:
            raise ScenarioError("the CoAP proxy requires a CoAP transport")
        if (
            self.use_proxy
            and self.topology.hops == 1
            and not self.topology.wired_tail
        ):
            # One wireless hop with no wired tail puts the resolver on
            # the border router — the node the proxy would bind on.
            raise ScenarioError(
                "the proxy needs a forwarder distinct from the resolver "
                "host (use hops >= 2 or a wired tail)"
            )

    @property
    def profile(self):
        from repro.transports.registry import registry

        return registry.get(self.transport)

    @property
    def caching_spec(self) -> CachingSpec:
        """The effective cache configuration of this run.

        Resolves the legacy boolean fields into a :class:`CachingSpec`
        when no explicit ``caching`` was given, and fills an unset
        ``scheme`` from the scenario's own.
        """
        spec = self.caching
        if spec is None:
            spec = CachingSpec(
                client_dns=self.client_dns_cache,
                client_coap=self.client_coap_cache,
            )
        if spec.scheme is None:
            spec = replace(spec, scheme=self.scheme)
        return spec

    def with_seed(self, seed: int) -> "Scenario":
        return replace(self, seed=seed)

    def cell_label(self) -> str:
        """Compact identity used in sweep tables."""
        return (
            f"{self.transport}/{self.topology.name}"
            f"/loss={self.topology.loss:g}"
        )
