#!/usr/bin/env python3
"""Lint guard: no new byte-slicing in the wire codecs' hot modules.

The decode hot paths parse with ``struct.unpack_from``, index
arithmetic, and :class:`repro.net.buffers.BufReader` cursors; every
``data[a:b]`` slice of a bytes-like object allocates a copy, and PR 6
removed most of them. This guard ratchets that state: it counts slice
subscripts (``x[a:b]``) per function across the codec modules and
compares the counts against the checked-in allowlist
(``tools/hot_slice_allowlist.json``).

* a function exceeding its allowance fails the build — rewrite the new
  slice (cursor, ``unpack_from``, or a deliberate single ``bytes(...)``
  boundary materialisation that you then record here);
* a function now below its allowance is reported so the allowlist can
  be ratcheted down.

Run ``python tools/check_hot_slices.py --update`` after a deliberate
change to regenerate the allowlist; the diff then documents the
decision in review.
"""

from __future__ import annotations

import ast
import json
import sys
from pathlib import Path
from typing import Dict

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
ALLOWLIST = Path(__file__).with_name("hot_slice_allowlist.json")

#: The codec modules whose slice counts are ratcheted.
HOT_MODULES = [
    "repro/cborlib/decoder.py",
    "repro/coap/message.py",
    "repro/coap/options.py",
    "repro/dns/message.py",
    "repro/dns/name.py",
    "repro/dns/rdata.py",
    "repro/dtls/record.py",
    "repro/lowpan/ieee802154.py",
    "repro/lowpan/iphc.py",
    "repro/net/buffers.py",
    "repro/oscore/option.py",
    "repro/oscore/protect.py",
]


def _slice_counts(path: Path) -> Dict[str, int]:
    """``{qualified function name: slice-subscript count}`` for *path*."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    counts: Dict[str, int] = {}
    stack: list = []

    class Visitor(ast.NodeVisitor):
        def _scoped(self, node) -> None:
            stack.append(node.name)
            self.generic_visit(node)
            stack.pop()

        visit_FunctionDef = _scoped
        visit_AsyncFunctionDef = _scoped
        visit_ClassDef = _scoped

        def visit_Subscript(self, node) -> None:
            if isinstance(node.slice, ast.Slice):
                scope = ".".join(stack) or "<module>"
                counts[scope] = counts.get(scope, 0) + 1
            self.generic_visit(node)

    Visitor().visit(tree)
    return counts


def inventory() -> Dict[str, Dict[str, int]]:
    return {
        module: _slice_counts(SRC / module)
        for module in HOT_MODULES
        if (SRC / module).exists()
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    current = inventory()
    if "--update" in argv:
        ALLOWLIST.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"allowlist rewritten: {ALLOWLIST}")
        return 0

    if not ALLOWLIST.exists():
        print(f"error: missing allowlist {ALLOWLIST}", file=sys.stderr)
        return 2
    allowed = json.loads(ALLOWLIST.read_text(encoding="utf-8"))

    failures = []
    improvements = []
    for module, scopes in current.items():
        module_allowed = allowed.get(module, {})
        for scope, count in scopes.items():
            budget = module_allowed.get(scope, 0)
            if count > budget:
                failures.append(
                    f"{module}:{scope}: {count} byte-slice(s), "
                    f"allowlisted {budget}"
                )
            elif count < budget:
                improvements.append(f"{module}:{scope}: {count} < {budget}")
        for scope, budget in module_allowed.items():
            if budget and scope not in scopes:
                improvements.append(f"{module}:{scope}: 0 < {budget}")

    for line in improvements:
        print(f"note: slice count dropped ({line}); ratchet with --update")
    if failures:
        print(
            "new byte-slicing in codec hot modules — parse via "
            "BufReader/struct.unpack_from, or record a deliberate "
            "boundary copy with --update:",
            file=sys.stderr,
        )
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"hot-slice guard passed ({len(current)} modules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
