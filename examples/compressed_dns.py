#!/usr/bin/env python3
"""The Section 7 CBOR compression scheme in action.

Encodes the paper's canonical messages in both the classic DNS wire
format and the compressed CBOR format (draft-lenders-dns-cbor) and
prints the savings, then resolves names end-to-end with the
``application/dns+cbor`` Content-Format.

Run:  python examples/compressed_dns.py
"""

from repro.coap.options import ContentFormat
from repro.dns import Question, RecordType, RecursiveResolver, Zone
from repro.doc import DocClient, DocServer
from repro.doc.cbor_format import compression_ratio, encode_query, encode_response
from repro.experiments.packet_sizes import MEDIAN_NAME, canonical_messages
from repro.sim import Simulator
from repro.stack import build_figure2_topology


def main() -> None:
    messages = canonical_messages()
    question = Question(MEDIAN_NAME, RecordType.AAAA)

    print("=== Wire format vs CBOR (Section 7) ===")
    query_wire = messages["query"].encode()
    query_cbor = encode_query(question)
    print(f"query:          {len(query_wire):3d} B wire -> {len(query_cbor):3d} B CBOR "
          f"(-{100 * compression_ratio(query_wire, query_cbor):.0f}%)")
    for kind in ("response_a", "response_aaaa"):
        wire = messages[kind].encode()
        cbor = encode_response(messages[kind])
        print(f"{kind + ':':15s} {len(wire):3d} B wire -> {len(cbor):3d} B CBOR "
              f"(-{100 * compression_ratio(wire, cbor):.0f}%)")

    print("\n=== End-to-end resolution with application/dns+cbor ===")
    sim = Simulator(seed=11)
    topology = build_figure2_topology(sim)
    zone = Zone()
    zone.add_address(MEDIAN_NAME, "2001:db8::42", ttl=120)
    DocServer(sim, topology.resolver_host.bind(5683), RecursiveResolver(zone))
    client = DocClient(
        sim,
        topology.clients[0].bind(),
        (topology.resolver_host.address, 5683),
        content_format=ContentFormat.DNS_CBOR,
    )

    def report(result, error) -> None:
        assert error is None, error
        print(f"resolved {result.question.name} -> {result.addresses} "
              f"(TTL {result.response.min_ttl()} s)")

    client.resolve(MEDIAN_NAME, RecordType.AAAA, report)
    sim.run(until=10)
    frames = topology.sniffer.records
    print(f"{len(frames)} frames, largest {max(r.length for r in frames)} B "
          f"(802.15.4 limit: 127 B)")


if __name__ == "__main__":
    main()
