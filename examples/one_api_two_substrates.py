#!/usr/bin/env python3
"""One RunSpec, two substrates: diff a simulation against live serving.

The same declarative ``RunSpec`` — DNS over CoAP, 20 queries, a client
DNS cache — executes twice: ``substrate="sim"`` runs the discrete-event
simulator on the one-hop topology, ``substrate="live"`` stands up a
real loopback UDP server and drives the same workload against it with
the open-loop load generator. Both return the unified versioned
``Report`` whose non-namespaced metric names are identical, so the
prediction and the measurement print as one table.

Run:  python examples/one_api_two_substrates.py
"""

import json

from repro.api import RunSpec, run

SPEC = "one-hop,transport=coap,queries=20,rate=50,loss=0.0,cache=client-dns"


def main() -> None:
    simulated = run(RunSpec.from_spec(SPEC))
    measured = run(RunSpec.from_spec(SPEC + ",substrate=live,timeout=5"))

    common = sorted(simulated.common_metrics())
    assert common == sorted(measured.common_metrics())

    print(f"{'metric':40s} {'simulated':>14s} {'live':>14s}")
    for key in common:
        def fmt(value):
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        print(f"{key:40s} {fmt(simulated.metrics[key]):>14s} "
              f"{fmt(measured.metrics[key]):>14s}")

    print("\nsubstrate-only metrics stay namespaced:")
    print(f"  sim.link.frames_1hop  = "
          f"{simulated.metrics['sim.link.frames_1hop']}")
    print(f"  live.elapsed_s        = {measured.metrics['live.elapsed_s']}")

    # Both documents round-trip through the same versioned JSON shape.
    payload = json.dumps(measured.to_json())
    print(f"\nlive Report serialises to {len(payload)} bytes of "
          f"version-{measured.report_version} JSON")


if __name__ == "__main__":
    main()
