#!/usr/bin/env python3
"""Live serving end-to-end on localhost: real sockets, no simulator.

Stands up a :class:`repro.live.DocLiveServer` on an ephemeral loopback
port, resolves a few names over plain CoAP *and* OSCORE with the async
:class:`repro.live.LiveResolver`, then runs a short open-loop load test
and prints the latency report — the same stack the simulator drives,
promoted onto the wall clock.

Run:  python examples/live_resolver.py
"""

import asyncio

from repro.live import DocLiveServer, LiveResolver, generate_report


async def main() -> None:
    # One server process-worth of state: a zone over 16 deterministic
    # names, DNS over CoAP on an ephemeral 127.0.0.1 port.
    server = DocLiveServer(transport="coap", port=0, num_names=16)
    async with server:
        host, port = server.endpoint
        print(f"live DoC server on {host}:{port} "
              f"({len(server.names)} names)\n")

        # Plain CoAP resolutions.
        async with LiveResolver(server.endpoint, transport="coap") as doc:
            for name in server.names[:3]:
                result = await doc.resolve(name, timeout=5.0)
                print(f"  coap   {name:28s} -> {result.addresses[0]:16s} "
                      f"{result.rtt * 1000:6.2f} ms")

    # The OSCORE profile end-to-end: both sides derive matching
    # security contexts from the shared master secret. One resolver
    # session = one OSCORE sender sequence, so the demo resolutions
    # and the load test share the session (a second resolver with the
    # same secret would restart the sequence and trip the server's
    # replay window — by design).
    server = DocLiveServer(transport="oscore", port=0, num_names=16)
    async with server:
        resolver = LiveResolver(
            server.endpoint, transport="oscore",
            cache_placement="client-dns",
        )
        async with resolver:
            for name in server.names[:3]:
                result = await resolver.resolve(name, timeout=5.0)
                print(f"  oscore {name:28s} -> {result.addresses[0]:16s} "
                      f"{result.rtt * 1000:6.2f} ms")
            print()

            # A one-second open-loop load test against the OSCORE
            # server, Zipf-popular names hitting the client DNS cache.
            # generate_report returns the unified repro.api Report —
            # the same document `repro run ...,substrate=live` emits.
            from repro.scenarios import WorkloadSpec

            report = await generate_report(
                resolver, server.names, rate=100.0, duration=1.0,
                timeout=5.0, workload=WorkloadSpec(zipf_alpha=1.0),
            )
        metrics = report.metrics
        print(f"loadtest: {metrics['queries.issued']} queries, "
              f"{metrics['queries.success_rate']:.0%} ok, "
              f"{metrics['throughput.qps']:.0f} qps")
        print(f"latency:  p50 {metrics['latency.p50_ms']:.2f} ms   "
              f"p95 {metrics['latency.p95_ms']:.2f} ms   "
              f"p99 {metrics['latency.p99_ms']:.2f} ms")
        hit_ratio = metrics.get("cache.client_dns.hit_ratio")
        if hit_ratio is not None:
            print(f"client DNS cache hit ratio: {hit_ratio:.0%}")


if __name__ == "__main__":
    asyncio.run(main())
