#!/usr/bin/env python3
"""End-to-end protection across an untrusted intermediary (Figure 4b).

The client resolves names with OSCORE through a CoAP forward proxy it
does not trust. The proxy forwards the protected messages but can read
neither the queried names nor the answers — unlike DTLS, where the
proxy would have to terminate the security session.

Run:  python examples/oscore_via_untrusted_proxy.py
"""

from repro.coap.proxy import ForwardProxy
from repro.dns import RecordType, RecursiveResolver, Zone
from repro.doc import DocClient, DocServer
from repro.oscore import SecurityContext
from repro.sim import Simulator
from repro.stack import build_figure2_topology


def main() -> None:
    sim = Simulator(seed=23)
    topology = build_figure2_topology(sim)

    zone = Zone()
    zone.add_address("secret-backend.example.org", "2001:db8::99", ttl=600)
    resolver = RecursiveResolver(zone)

    client_ctx, server_ctx = SecurityContext.pair(b"pre-shared-master", b"salt")
    DocServer(
        sim, topology.resolver_host.bind(5683), resolver,
        oscore_context=server_ctx,
    )
    proxy = ForwardProxy(
        sim,
        topology.forwarder.bind(5683),
        topology.forwarder.bind(),
        (topology.resolver_host.address, 5683),
    )
    client = DocClient(
        sim,
        topology.clients[0].bind(),
        (topology.forwarder.address, 5683),   # talk to the proxy
        oscore_context=client_ctx,
    )

    captured = []
    original = proxy.upstream.socket.sendto

    def spy(payload, dst, port, metadata=None):
        captured.append(bytes(payload))
        original(payload, dst, port, metadata)

    proxy.upstream.socket.sendto = spy

    def report(result, error) -> None:
        assert error is None, error
        print(f"client resolved: {result.question.name} -> {result.addresses}")

    client.resolve("secret-backend.example.org", RecordType.AAAA, report)
    sim.run(until=30)

    leaked = any(b"secret-backend" in frame for frame in captured)
    print(f"proxy forwarded {len(captured)} protected message(s)")
    print(f"queried name visible to the proxy: {leaked}")
    assert not leaked, "OSCORE must hide the DNS payload from the proxy"
    print("OSCORE kept the name resolution confidential end-to-end.")


if __name__ == "__main__":
    main()
