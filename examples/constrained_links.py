#!/usr/bin/env python3
"""Which DoC configuration fits which link technology?

Table 2b lists frame sizes from 59 bytes (LoRaWAN) to 1600 bytes
(NB-IoT). This example combines the packet-size machinery with the
Section 7 CBOR compression and Appendix D block-wise transfer to show
what it takes to fit a median-length name resolution onto each link.

Run:  python examples/constrained_links.py
"""

from repro.coap.blockwise import split_body
from repro.doc.cbor_format import encode_query, encode_response
from repro.dns import Question, RecordType
from repro.experiments.packet_sizes import (
    MEDIAN_NAME,
    canonical_messages,
    dissect_transport,
)
from repro.memmodel.platforms import LINK_TECHNOLOGIES


def main() -> None:
    messages = canonical_messages()
    question = Question(MEDIAN_NAME, RecordType.AAAA)

    wire_query = messages["query"].encode()
    wire_response = messages["response_aaaa"].encode()
    cbor_query = encode_query(question)
    cbor_response = encode_response(messages["response_aaaa"])

    print(f"name: {MEDIAN_NAME} ({len(MEDIAN_NAME)} chars, the IoT median)\n")
    print("payload sizes:")
    print(f"  DNS wire:  query {len(wire_query)} B, AAAA response {len(wire_response)} B")
    print(f"  DNS CBOR:  query {len(cbor_query)} B, AAAA response {len(cbor_response)} B\n")

    oscore = {d.message: d for d in dissect_transport("oscore")}
    query_udp = oscore["query"].udp_payload
    response_udp = oscore["response_aaaa"].udp_payload

    print("OSCORE-protected exchange vs. link frame sizes (Table 2b):")
    print(f"{'technology':15s} {'min frame':>10s} {'name share':>11s} "
          f"{'fits wire?':>11s} {'strategy':>30s}")
    for tech in LINK_TECHNOLOGIES.values():
        share = tech.name_fraction(len(MEDIAN_NAME))
        fits = max(query_udp, response_udp) + 30 <= tech.min_frame
        if fits:
            strategy = "plain DoC"
        else:
            # Headroom for the CoAP payload: LPWANs use SCHC (RFC 8824)
            # which squeezes IP/UDP/CoAP into ~15 bytes; 6LoWPAN-class
            # links pay the Figure 6 overhead of ~60 bytes.
            overhead = 15 if tech.min_frame < 100 else 60
            headroom = tech.min_frame - overhead
            strategy = "n/a"
            for size in (64, 32, 16):
                if size <= headroom:
                    blocks = len(split_body(wire_response, size))
                    strategy = f"block-wise {size} B ({blocks} blocks)"
                    break
            if headroom >= len(cbor_response):
                strategy = f"CBOR format ({len(cbor_response)} B payload)"
        print(f"{tech.name:15s} {tech.min_frame:9d}B {share:10.1%} "
              f"{'yes' if fits else 'no':>11s} {strategy:>30s}")

    print(
        "\nTakeaway (Sections 3+7): on LoRaWAN-class links the wire format "
        "needs block-wise transfer or the CBOR compression; 802.15.4 needs "
        "neither but still fragments without them."
    )


if __name__ == "__main__":
    main()
