#!/usr/bin/env python3
"""The Section 6 caching study in miniature: DoH-like vs EOL TTLs.

Clients repeatedly query 8 names (4 AAAA records each, TTLs of 2-8 s)
through a caching CoAP forward proxy. Under the DoH-like scheme, TTL
aging changes the payload and breaks ETag revalidation; under EOL TTLs
the representation is stable and 2.03 Valid keeps full responses off
the constrained links. Cache placement is a `CachingSpec`, and every
location reports the unified per-location stats of `repro.cache`.

Run:  python examples/caching_proxy.py
"""

from repro.doc import CachingScheme
from repro.scenarios import CachingSpec, Scenario, ScenarioRunner, WorkloadSpec


def run(scheme: CachingScheme, placement: str):
    scenario = Scenario(
        name=f"caching-study/{placement}",
        transport="coap",
        workload=WorkloadSpec(
            num_queries=50, num_names=8, records_per_name=4, ttl=(2, 8)
        ),
        scheme=scheme,
        use_proxy=True,
        caching=CachingSpec.from_placement(placement),
        seed=7,
    )
    return ScenarioRunner().run(scenario)


def main() -> None:
    print("scenario                         frames@1hop  bytes@1hop  "
          "proxy-hits  revalidations")
    scenarios = [
        ("opaque forwarder", CachingScheme.EOL_TTLS, "none"),
        ("proxy + DoH-like", CachingScheme.DOH_LIKE, "proxy"),
        ("proxy + EOL TTLs", CachingScheme.EOL_TTLS, "proxy"),
    ]
    results = {}
    for label, scheme, placement in scenarios:
        result = run(scheme, placement)
        results[label] = result
        print(
            f"{label:32s} {result.link.frames_1hop:11d} "
            f"{result.link.bytes_1hop:11d} {result.proxy_cache_hits:11d} "
            f"{result.proxy_revalidations:13d}"
        )

    print("\nper-location cache stats (proxy + EOL TTLs):")
    for location, stats in sorted(results["proxy + EOL TTLs"].cache_stats.items()):
        print(
            f"  {location:10s} hits {stats.hits:3d}  stale {stats.stale_hits:3d}  "
            f"validations {stats.validations:3d}  "
            f"failures {stats.validation_failures:3d}  "
            f"hit-ratio {stats.hit_ratio:.0%}"
        )

    opaque = results["opaque forwarder"].link.bytes_1hop
    eol = results["proxy + EOL TTLs"].link.bytes_1hop
    print(
        f"\nEOL TTLs + proxy moves {opaque - eol} bytes "
        f"({100 * (opaque - eol) / opaque:.0f}%) off the bottleneck link."
    )


if __name__ == "__main__":
    main()
