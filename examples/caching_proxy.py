#!/usr/bin/env python3
"""The Section 6 caching study in miniature: DoH-like vs EOL TTLs.

Clients repeatedly query 8 names (4 AAAA records each, TTLs of 2-8 s)
through a caching CoAP forward proxy. Under the DoH-like scheme, TTL
aging changes the payload and breaks ETag revalidation; under EOL TTLs
the representation is stable and 2.03 Valid keeps full responses off
the constrained links.

Runs go through the unified ``repro.api`` façade: each configuration
is a ``RunSpec`` and every measurement below is read from the
versioned Report's stable dotted metric names (link utilisation under
``sim.link.*``, per-location cache stats under ``sim.cache.*`` /
``cache.*``).

Run:  python examples/caching_proxy.py
"""

from repro.api import RunSpec, run
from repro.doc import CachingScheme
from repro.scenarios import CachingSpec, Scenario, WorkloadSpec


def caching_run(scheme: str, placement: str):
    scenario = Scenario(
        name=f"caching-study/{placement}",
        transport="coap",
        workload=WorkloadSpec(
            num_queries=50, num_names=8, records_per_name=4, ttl=(2, 8)
        ),
        scheme=CachingScheme(scheme),
        use_proxy=True,
        caching=CachingSpec.from_placement(placement),
        seed=7,
    )
    return run(RunSpec.from_scenario(scenario))


def main() -> None:
    print("scenario                         frames@1hop  bytes@1hop  "
          "proxy-hits  revalidations")
    configurations = [
        ("opaque forwarder", "eol-ttls", "none"),
        ("proxy + DoH-like", "doh-like", "proxy"),
        ("proxy + EOL TTLs", "eol-ttls", "proxy"),
    ]
    reports = {}
    for label, scheme, placement in configurations:
        report = caching_run(scheme, placement)
        reports[label] = report
        metrics = report.metrics
        print(
            f"{label:32s} {metrics['sim.link.frames_1hop']:11d} "
            f"{metrics['sim.link.bytes_1hop']:11d} "
            f"{metrics.get('sim.cache.proxy.hits', 0):11d} "
            f"{metrics.get('sim.cache.proxy.validations', 0):13d}"
        )

    print("\nper-location cache stats (proxy + EOL TTLs):")
    metrics = reports["proxy + EOL TTLs"].metrics
    locations = sorted({
        key.rsplit(".", 1)[0]
        for key in metrics
        if ".cache." in key or key.startswith("cache.")
    })
    for location in locations:
        name = location.split("cache.", 1)[1]
        print(
            f"  {name:10s} hits {metrics[f'{location}.hits']:3d}  "
            f"stale {metrics[f'{location}.stale_hits']:3d}  "
            f"validations {metrics[f'{location}.validations']:3d}  "
            f"failures {metrics[f'{location}.validation_failures']:3d}  "
            f"hit-ratio {metrics[f'{location}.hit_ratio']:.0%}"
        )

    opaque = reports["opaque forwarder"].metrics["sim.link.bytes_1hop"]
    eol = reports["proxy + EOL TTLs"].metrics["sim.link.bytes_1hop"]
    print(
        f"\nEOL TTLs + proxy moves {opaque - eol} bytes "
        f"({100 * (opaque - eol) / opaque:.0f}%) off the bottleneck link."
    )


if __name__ == "__main__":
    main()
