#!/usr/bin/env python3
"""The Section 6 caching study in miniature: DoH-like vs EOL TTLs.

Clients repeatedly query 8 names (4 AAAA records each, TTLs of 2-8 s)
through a caching CoAP forward proxy. Under the DoH-like scheme, TTL
aging changes the payload and breaks ETag revalidation; under EOL TTLs
the representation is stable and 2.03 Valid keeps full responses off
the constrained links.

Run:  python examples/caching_proxy.py
"""

from repro.doc import CachingScheme
from repro.experiments import ExperimentConfig, run_resolution_experiment


def run(scheme: CachingScheme, use_proxy: bool):
    config = ExperimentConfig(
        transport="coap",
        num_queries=50,
        num_names=8,
        records_per_name=4,
        ttl=(2, 8),
        use_proxy=use_proxy,
        client_coap_cache=False,
        scheme=scheme,
        seed=7,
    )
    return run_resolution_experiment(config)


def main() -> None:
    print("scenario                         frames@1hop  bytes@1hop  "
          "proxy-hits  revalidations")
    scenarios = [
        ("opaque forwarder", CachingScheme.EOL_TTLS, False),
        ("proxy + DoH-like", CachingScheme.DOH_LIKE, True),
        ("proxy + EOL TTLs", CachingScheme.EOL_TTLS, True),
    ]
    results = {}
    for label, scheme, use_proxy in scenarios:
        result = run(scheme, use_proxy)
        results[label] = result
        print(
            f"{label:32s} {result.link.frames_1hop:11d} "
            f"{result.link.bytes_1hop:11d} {result.proxy_cache_hits:11d} "
            f"{result.proxy_revalidations:13d}"
        )

    opaque = results["opaque forwarder"].link.bytes_1hop
    eol = results["proxy + EOL TTLs"].link.bytes_1hop
    print(
        f"\nEOL TTLs + proxy moves {opaque - eol} bytes "
        f"({100 * (opaque - eol) / opaque:.0f}%) off the bottleneck link."
    )


if __name__ == "__main__":
    main()
