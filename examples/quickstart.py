#!/usr/bin/env python3
"""Quickstart: resolve names with DNS over CoAP on the Figure 2 topology.

Builds the paper's deployment — two constrained clients, a forwarder, a
border router, and a resolver host — then resolves a handful of names
over DoC with the FETCH method and prints the answers and timings.

Run:  python examples/quickstart.py
"""

from repro.dns import RecordType, RecursiveResolver, Zone
from repro.doc import DocClient, DocServer
from repro.sim import Simulator
from repro.stack import build_figure2_topology


def main() -> None:
    sim = Simulator(seed=42)
    topology = build_figure2_topology(sim, loss=0.05)

    # Authoritative data the mock recursive resolver serves.
    zone = Zone()
    for index, host in enumerate(("sensor", "camera", "thermostat", "doorbell")):
        zone.add_address(f"{host}.home.example.org", f"2001:db8::{index + 1}", ttl=300)
    resolver = RecursiveResolver(zone)

    # DoC server on the resolver host, DoC client on constrained node C1.
    DocServer(sim, topology.resolver_host.bind(5683), resolver)
    client = DocClient(
        sim,
        topology.clients[0].bind(),
        (topology.resolver_host.address, 5683),
    )

    def report(result, error) -> None:
        if error is not None:
            print(f"  resolution failed: {error}")
            return
        print(
            f"  {result.question.name:32s} -> {', '.join(result.addresses)}"
            f"   ({result.resolution_time * 1000:.1f} ms)"
        )

    print("Resolving over DNS-over-CoAP (FETCH):")
    for index, host in enumerate(("sensor", "camera", "thermostat", "doorbell")):
        sim.schedule(
            index * 0.5,
            client.resolve,
            f"{host}.home.example.org",
            RecordType.AAAA,
            report,
        )

    sim.run(until=30)
    print(
        f"\n{len(topology.sniffer.records)} link-layer frames crossed the "
        f"wireless hops ({sum(r.length for r in topology.sniffer.records)} bytes)."
    )


if __name__ == "__main__":
    main()
