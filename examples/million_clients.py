#!/usr/bin/env python3
"""A million DNS-over-CoAP clients on one core: the fleet substrate.

Three runs of the same one-hop DoC deployment at fleet scale:

1. a steady-state million-client baseline,
2. the same fleet with ``flash_crowd=8`` (the middle third of the run
   compressed 8x hot through the inverse cumulative intensity), and
3. the same fleet with ``churn=0.5`` (half the fleet replaced per
   second, replacements restarting with cold caches).

Each compiles through the same ``RunSpec`` -> ``run()`` facade as the
exact simulator and the live runtime, returns the same versioned
``Report``, and finishes in seconds because the engine's work is
bounded by ``fleet-sample-cap``, not by the fleet size.

Run:  python examples/million_clients.py
"""

import time

from repro.api import RunSpec, run

# Four queries per client over a ten-second window: enough revisits for
# the client caches to matter, sampled down to fleet-sample-cap by the
# engine (65536 queries simulated, counters scaled back up).
BASE = (
    "one-hop,transport=coap,clients=1000000,queries=4000000,rate=400000,"
    "names=64,cache=client-dns+client-coap,substrate=fleet"
)


def show(label: str, report, elapsed: float) -> None:
    m = report.metrics
    print(f"{label:24s} issued={m['queries.issued']:>9,} "
          f"ok={m['queries.succeeded']:>9,} "
          f"p99={m['latency.p99_ms']:6.1f}ms "
          f"dns_hit={m['cache.client_dns.hit_ratio']:.3f} "
          f"({elapsed:.1f}s wall)")


def timed_run(spec: str):
    start = time.perf_counter()
    report = run(RunSpec.from_spec(spec))
    return report, time.perf_counter() - start


def main() -> None:
    baseline, elapsed = timed_run(BASE)
    sample = baseline.metrics["fleet.sample.queries"]
    scale = baseline.metrics["fleet.sample.scale"]
    print(f"fleet of {baseline.metrics['fleet.clients']:,} clients; "
          f"engine simulated a {sample:,}-query sample "
          f"(scale {scale:.0f}x)\n")

    show("steady state", baseline, elapsed)

    crowd, elapsed = timed_run(BASE + ",flash_crowd=8")
    show("flash_crowd=8", crowd, elapsed)

    churned, elapsed = timed_run(BASE + ",churn=0.5")
    show("churn=0.5/s", churned, elapsed)

    # The fleet-only dimensions move the aggregates the way the paper's
    # caching story predicts: a flash crowd concentrates queries on the
    # same hot names (hit ratio holds or rises), while churn cold-starts
    # caches and erodes it.
    assert churned.metrics["cache.client_dns.hit_ratio"] \
        < baseline.metrics["cache.client_dns.hit_ratio"]
    print("\nchurn erodes the client DNS hit ratio "
          f"({baseline.metrics['cache.client_dns.hit_ratio']:.3f} -> "
          f"{churned.metrics['cache.client_dns.hit_ratio']:.3f}); "
          "all three Reports share the sim/live metric vocabulary.")


if __name__ == "__main__":
    main()
