#!/usr/bin/env python3
"""Encrypted service discovery: DNS-SD over multicast DoC + Group OSCORE.

The paper's outlook (Section 8) proposes protecting mDNS-based service
discovery with Group OSCORE. This example builds a small smart-home
cell — one browser, three service hosts in radio range — and browses
``_coap._udp.local``. Every frame on the air is encrypted for the
group; the sniffer verifies no service name leaks.

Run:  python examples/service_discovery.py
"""

from repro.doc.dnssd import DnsSdClient, DnsSdResponder, ServiceInstance
from repro.oscore.group import GroupContext
from repro.sim import Simulator
from repro.stack import Network

SERVICES = [
    ("Kitchen Light", "light-1.local", (b"model=L100", b"dim=1")),
    ("Window Sensor", "sensor-3.local", (b"battery=87",)),
    ("Heat Valve", "valve-2.local", (b"target=21.5",)),
]


def main() -> None:
    sim = Simulator(seed=77)
    network = Network(sim)
    browser_node = network.add_node("browser")

    def group_context(member: bytes) -> GroupContext:
        return GroupContext(b"home-grp", member, b"home-master-secret", b"s")

    for index, (instance, target, txt) in enumerate(SERVICES):
        host = network.add_node(f"host{index}")
        network.connect_radio("browser", host.name, loss=0.05)
        responder = DnsSdResponder(sim, host, group_context(bytes([0x10 + index])))
        responder.register(
            ServiceInstance(
                "_coap._udp.local",
                f"{instance}._coap._udp.local",
                target,
                5683,
                txt,
            )
        )

    browser = DnsSdClient(sim, browser_node, group_context(b"\x01"))

    def report(result) -> None:
        print(f"browse '{result.question.name}' found "
              f"{len(result.answers)} responder(s):")
        for instance in result.instances:
            print(f"  - {instance}")

    browser.browse("_coap._udp.local", report)
    sim.run(until=5)

    frames = network.sniffer.records
    print(f"\n{len(frames)} multicast/unicast frames on the air, "
          f"all Group-OSCORE protected.")


if __name__ == "__main__":
    main()
