#!/usr/bin/env python3
"""Compare every DNS transport of the paper on the same network.

Runs DNS over UDP, DNS over DTLS, plain DoC, DoC over DTLS (CoAPS), and
DoC with OSCORE over the Figure 2 topology and reports resolution
times, link-layer footprints, and the Figure 6 packet dissection.

Run:  python examples/secure_transports.py
"""

from repro.experiments import (
    ExperimentConfig,
    dissect_all,
    percentile,
    run_resolution_experiment,
)


def main() -> None:
    print("=== Packet dissection (24-char name, Figure 6) ===")
    print(f"{'transport':11s} {'message':16s} {'DNS':>4s} {'sec':>4s} "
          f"{'CoAP':>5s} {'frames':>7s} fragmented")
    for transport, dissections in dissect_all().items():
        for d in dissections:
            if "Hello" in d.message or "Cipher" in d.message \
                    or "Exchange" in d.message or "Finish" in d.message:
                continue
            print(
                f"{transport:11s} {d.message:16s} {d.dns_bytes:4d} "
                f"{d.security_bytes:4d} {d.coap_bytes:5d} "
                f"{str(list(d.frame_sizes)):>7s}  {d.fragmented}"
            )

    print("\n=== Resolution times, 50 queries at lambda=5/s (Figure 7) ===")
    print(f"{'transport':8s} {'success':>8s} {'median':>9s} {'p95':>9s} {'max':>9s}")
    for transport in ("udp", "dtls", "coap", "coaps", "oscore"):
        config = ExperimentConfig(
            transport=transport, num_queries=50, loss=0.15, l2_retries=1, seed=1
        )
        result = run_resolution_experiment(config)
        times = result.resolution_times
        print(
            f"{transport:8s} {result.success_rate:8.2f} "
            f"{percentile(times, 50) * 1000:8.1f}m "
            f"{percentile(times, 95) * 1000:8.1f}m "
            f"{max(times):8.2f}s"
        )


if __name__ == "__main__":
    main()
