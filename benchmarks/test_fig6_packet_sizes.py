"""Figure 6: maximum link-layer packet sizes per transport."""

from repro.experiments import FRAGMENTATION_LIMIT, dissect_all
from repro.experiments.packet_sizes import dissect_transport

from conftest import print_rows


def test_fig6_packet_sizes(benchmark):
    grid = benchmark(dissect_all)

    rows = []
    for transport, dissections in grid.items():
        for d in dissections:
            rows.append(
                (
                    transport,
                    d.message,
                    d.dns_bytes,
                    d.security_bytes,
                    d.coap_bytes,
                    d.framing_bytes,
                    list(d.frame_sizes),
                    "FRAG" if d.fragmented else "",
                )
            )
    print_rows(
        "Figure 6 — link-layer packet sizes (24-char name)",
        ["transport", "message", "DNS", "security", "CoAP", "L2+6Lo", "frames", ""],
        rows,
    )

    udp = {d.message: d for d in grid["UDP"] }
    coap = {d.message: d for d in dissect_transport("coap")}
    coaps = {d.message: d for d in dissect_transport("coaps")}
    oscore = {d.message: d for d in dissect_transport("oscore")}
    dtls = {d.message: d for d in dissect_transport("dtls")}

    # The DNS messages themselves (paper: 42/58/70 bytes).
    assert udp["query"].dns_bytes == 42
    assert udp["response_a"].dns_bytes == 58
    assert udp["response_aaaa"].dns_bytes == 70

    # Fragmentation pattern of Section 5.3/5.4.
    assert not udp["query"].fragmented and not udp["response_a"].fragmented
    assert udp["response_aaaa"].fragmented
    assert not coap["query"].fragmented
    for name, d in {**coaps, **oscore, **dtls}.items():
        assert d.fragmented, name

    # The DTLS handshake alone causes fragmented datagrams.
    handshake = [d for d in grid["DTLSv1.2"] if "Hello" in d.message]
    assert any(d.fragmented for d in grid["DTLSv1.2"] if "Cookie" in d.message)

    # OSCORE beats CoAPS on every message (smaller security overhead).
    for message in ("query", "response_a", "response_aaaa"):
        assert oscore[message].udp_payload < coaps[message].udp_payload

    # Everything respects the 127-byte PDU.
    for dissections in grid.values():
        for d in dissections:
            assert all(f <= FRAGMENTATION_LIMIT for f in d.frame_sizes)
