"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one DoC design decision and measures what breaks,
quantifying *why* the paper's choices are what they are:

1. DNS ID zeroing (Section 4.2) — without it, equal queries never share
   a cache entry.
2. FETCH vs POST — POST forfeits every cache level.
3. Plain OSCORE vs cacheable OSCORE — fresh PIVs defeat proxy caching;
   deterministic requests restore it without giving up encryption.
4. EOL TTLs vs DoH-like — revalidation success under TTL churn.
"""

from dataclasses import replace

import pytest

from repro.coap import CoapCache, CoapMessage, Code, cache_key_for
from repro.coap.proxy import ForwardProxy
from repro.dns import RecordType, RecursiveResolver, Zone, make_query
from repro.doc import CachingScheme, DocClient, DocServer
from repro.experiments import ExperimentConfig, run_resolution_experiment
from repro.oscore import SecurityContext
from repro.oscore.cacheable import derive_deterministic_context
from repro.sim import Simulator
from repro.stack import build_figure2_topology

from conftest import print_rows


def test_ablation_dns_id_zeroing(benchmark):
    """Zeroed IDs share one cache entry; random IDs always miss."""

    def hit_rate(zero_id: bool, queries: int = 20) -> float:
        cache = CoapCache(capacity=8)
        hits = 0
        for index in range(queries):
            txid = 0 if zero_id else index + 1
            wire = make_query("device.example.org", RecordType.AAAA, txid=txid).encode()
            request = CoapMessage.request(Code.FETCH, "/dns", payload=wire)
            fresh, _ = cache.lookup(request, now=float(index))
            if fresh is not None:
                hits += 1
                continue
            response = request.make_response(Code.CONTENT, payload=b"resp")
            cache.store(request, response.with_uint_option(14, 300), now=float(index))
        return hits / queries

    zeroed = benchmark(hit_rate, True)
    randomised = hit_rate(False)
    print_rows(
        "Ablation — DNS ID zeroing (Section 4.2)",
        ["configuration", "CoAP cache hit rate"],
        [("ID = 0 (DoC)", f"{zeroed:.0%}"), ("random ID", f"{randomised:.0%}")],
    )
    assert zeroed > 0.9
    assert randomised == 0.0


def test_ablation_method_choice(benchmark):
    """FETCH allows proxy caching; POST forces every query upstream."""

    def run(method: Code):
        config = ExperimentConfig(
            transport="coap", method=method, num_queries=40, num_names=8,
            records_per_name=4, ttl=(30, 30), use_proxy=True, seed=13,
        )
        return run_resolution_experiment(config)

    fetch = benchmark(run, Code.FETCH)
    post = run(Code.POST)
    print_rows(
        "Ablation — request method",
        ["method", "proxy cache hits", "bytes@1hop"],
        [
            ("FETCH", fetch.proxy_cache_hits, fetch.link.bytes_1hop),
            ("POST", post.proxy_cache_hits, post.link.bytes_1hop),
        ],
    )
    assert fetch.proxy_cache_hits > 0
    assert post.proxy_cache_hits == 0
    assert fetch.link.bytes_1hop < post.link.bytes_1hop


def _oscore_proxy_run(cacheable: bool):
    sim = Simulator(seed=14)
    topo = build_figure2_topology(sim)
    zone = Zone()
    zone.add_address("svc.example.org", "2001:db8::7", ttl=300)
    resolver = RecursiveResolver(zone)
    if cacheable:
        server_ctx = derive_deterministic_context(b"grp", b"s", role="server")
        server = DocServer(sim, topo.resolver_host.bind(5683), resolver,
                           deterministic_context=server_ctx)
        contexts = [
            derive_deterministic_context(b"grp", b"s", role="client")
            for _ in topo.clients
        ]
    else:
        client_ctx, server_ctx = SecurityContext.pair(b"grp", b"s")
        server = DocServer(sim, topo.resolver_host.bind(5683), resolver,
                           oscore_context=server_ctx)
        contexts = [client_ctx, client_ctx]
    proxy = ForwardProxy(sim, topo.forwarder.bind(5683), topo.forwarder.bind(),
                         (topo.resolver_host.address, 5683))
    clients = [
        DocClient(sim, node.bind(), (topo.forwarder.address, 5683),
                  oscore_context=ctx, cacheable_oscore=cacheable)
        for node, ctx in zip(topo.clients, contexts)
    ]
    results = []
    for index in range(6):
        client = clients[index % 2]
        sim.schedule(index * 1.0, client.resolve, "svc.example.org",
                     RecordType.AAAA, lambda r, e: results.append((r, e)))
    sim.run(until=60)
    assert all(e is None for _, e in results), results
    return server.queries_handled, proxy.requests_served_from_cache


def test_ablation_cacheable_oscore(benchmark):
    """Plain OSCORE defeats the proxy cache (fresh PIVs); deterministic
    requests restore en-route caching — Table 1's OSCORE column."""
    plain = benchmark(_oscore_proxy_run, False)
    cacheable = _oscore_proxy_run(True)
    print_rows(
        "Ablation — OSCORE vs cacheable OSCORE (6 equal queries)",
        ["mode", "origin handled", "proxy cache hits"],
        [
            ("plain OSCORE", plain[0], plain[1]),
            ("cacheable OSCORE", cacheable[0], cacheable[1]),
        ],
    )
    assert plain[1] == 0 and plain[0] == 6
    assert cacheable[1] == 5 and cacheable[0] == 1


def test_ablation_caching_scheme_revalidation(benchmark):
    """EOL TTLs revalidations succeed under TTL churn; DoH-like fail."""

    def run(scheme: CachingScheme):
        config = ExperimentConfig(
            transport="coap", num_queries=50, num_names=8,
            records_per_name=4, ttl=(2, 8), use_proxy=True,
            client_coap_cache=True, scheme=scheme, seed=9,
        )
        result = run_resolution_experiment(config)
        validations = sum(
            1 for e in result.client_events if e.kind == "validation"
        )
        return result, validations

    eol, eol_validations = benchmark(run, CachingScheme.EOL_TTLS)
    doh, doh_validations = run(CachingScheme.DOH_LIKE)
    print_rows(
        "Ablation — caching scheme under TTL churn",
        ["scheme", "client 2.03 revalidations", "bytes@1hop"],
        [
            ("EOL TTLs", eol_validations, eol.link.bytes_1hop),
            ("DoH-like", doh_validations, doh.link.bytes_1hop),
        ],
    )
    assert eol_validations > doh_validations
    assert eol.link.bytes_1hop < doh.link.bytes_1hop
