"""Figure 14: packet sizes under block-wise transfer (Appendix D)."""

from repro.experiments import FRAGMENTATION_LIMIT
from repro.experiments.packet_sizes import dissect_blockwise, dissect_transport

from conftest import print_rows


def _grid():
    return {size: dissect_blockwise(size) for size in (16, 32, 64)}


def test_fig14_blockwise_packet_sizes(benchmark):
    grid = benchmark(_grid)

    rows = []
    for size, dissections in grid.items():
        for d in dissections:
            rows.append(
                (
                    f"{size} B",
                    d.message,
                    d.udp_payload,
                    list(d.frame_sizes),
                    "FRAG" if d.fragmented else "",
                )
            )
    print_rows(
        "Figure 14 — block-wise packet sizes",
        ["block size", "message", "UDP payload", "frames", ""],
        rows,
    )

    def by_message(size):
        return {d.message: d for d in grid[size]}

    # Block-wise drops FETCH/POST exchanges below the fragmentation
    # line for block sizes 16 and 32 (Appendix D).
    for size in (16, 32):
        for message, d in by_message(size).items():
            if message == "query [G]":
                continue  # GET cannot be block-wise transferred
            assert not d.fragmented, (size, message)

    # The GET query stays identical (and fragmented) in all modes.
    for size in (16, 32, 64):
        assert by_message(size)["query [G]"].fragmented

    # "a block size of 32 bytes is ideal: 16 makes blocks smaller and
    # more numerous than necessary and 64 already leads to 6LoWPAN
    # fragmentation."
    full = {d.message: d for d in dissect_transport("coap")}
    aaaa64 = by_message(64).get("Response (AAAA)")
    assert aaaa64 is not None and aaaa64.fragmented
    # 16-byte blocks need more messages than 32-byte blocks for the
    # same query (42 B -> 3 vs 2 blocks).
    from repro.coap.blockwise import split_body

    query_len = full["query"].dns_bytes
    assert len(split_body(bytes(query_len), 16)) > len(split_body(bytes(query_len), 32))

    # Everything respects the PDU limit.
    for dissections in grid.values():
        for d in dissections:
            assert all(f <= FRAGMENTATION_LIMIT for f in d.frame_sizes)
