"""Table 2: the constraints DoC must fit — checked against our builds
and packets, not just restated."""

from repro.experiments.packet_sizes import MEDIAN_NAME, dissect_transport
from repro.memmodel import fig5_builds
from repro.memmodel.platforms import (
    DEVICE_CLASSES,
    EVALUATION_PLATFORM,
    LINK_TECHNOLOGIES,
)

from conftest import print_rows


def test_table2_constraints(benchmark):
    builds = benchmark(fig5_builds, True)

    rows = [
        (
            cls.name,
            f"{cls.ram_bytes // 1000} kB",
            f"{cls.rom_bytes // 1000} kB",
            ", ".join(
                name for name, build in builds.items()
                if cls.fits(build.rom, build.ram)
            ) or "-",
        )
        for cls in DEVICE_CLASSES.values()
    ]
    print_rows(
        "Table 2a — device classes vs. our builds",
        ["class", "RAM", "ROM", "fitting builds"],
        rows,
    )

    link_rows = [
        (
            tech.name,
            f"{tech.data_rate_kbps[0]}-{tech.data_rate_kbps[1]} kbit/s",
            f"{tech.frame_size_bytes[0]}-{tech.frame_size_bytes[1]} B",
            f"{100 * tech.name_fraction(24):.1f}%",
        )
        for tech in LINK_TECHNOLOGIES.values()
    ]
    print_rows(
        "Table 2b — link technologies (24-char name share of min frame)",
        ["technology", "data rate", "frame size", "24-char name"],
        link_rows,
    )

    # Section 3's arithmetic: a 24-char name occupies 18.9% of the
    # 127-byte 802.15.4 PDU and 40.7% of LoRaWAN's 59-byte PDU.
    assert abs(LINK_TECHNOLOGIES["ieee802154"].name_fraction(24) - 0.189) < 0.01
    assert abs(LINK_TECHNOLOGIES["lorawan"].name_fraction(24) - 0.407) < 0.01

    # Every DoC build fits class 2 and the evaluation platform; the
    # OSCORE build also approaches class-1 ROM feasibility.
    for build in builds.values():
        assert DEVICE_CLASSES["class2"].fits(build.rom, build.ram), build.name
        assert EVALUATION_PLATFORM.fits(build.rom, build.ram)
    assert builds["OSCORE"].rom < DEVICE_CLASSES["class1"].rom_bytes // 2

    # The Figure 6 packets respect the 802.15.4 frame limit per-fragment.
    for transport in ("udp", "coap", "oscore"):
        for dissection in dissect_transport(transport, name=MEDIAN_NAME):
            for frame in dissection.frame_sizes:
                assert frame <= LINK_TECHNOLOGIES["ieee802154"].min_frame
