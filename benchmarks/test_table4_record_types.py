"""Table 4: queried record types in the IN class."""

import random

from repro.datasets import DATASET_PROFILES, generate_queries, record_type_shares
from repro.dns import RecordType

from conftest import print_rows


def test_table4_record_type_shares(benchmark):
    rng = random.Random(3)

    def build():
        iot = generate_queries(DATASET_PROFILES["yourthings"], rng, 30000)
        ixp = generate_queries(DATASET_PROFILES["ixp"], rng, 30000)
        return iot, ixp

    iot, ixp = benchmark(build)

    iot_all = record_type_shares(iot)
    iot_unicast = record_type_shares([q for q in iot if not q.is_mdns])
    ixp_shares = record_type_shares(ixp)

    def fmt(shares):
        def pct(rtype):
            return f"{100 * shares.get(int(rtype), 0.0):.1f}%"

        return [pct(RecordType.A), pct(RecordType.AAAA), pct(RecordType.ANY),
                pct(RecordType.HTTPS), pct(RecordType.PTR), pct(RecordType.SRV),
                pct(RecordType.TXT)]

    print_rows(
        "Table 4 — record types",
        ["dataset", "A", "AAAA", "ANY", "HTTPS", "PTR", "SRV", "TXT"],
        [
            ["IoT w/ mDNS"] + fmt(iot_all),
            ["IoT w/o mDNS"] + fmt(iot_unicast),
            ["IXP"] + fmt(ixp_shares),
        ],
    )

    # Paper claims: A most requested, AAAA second; w/o mDNS A+AAAA >99%.
    assert iot_all[int(RecordType.A)] > iot_all[int(RecordType.AAAA)]
    a_aaaa = iot_unicast[int(RecordType.A)] + iot_unicast[int(RecordType.AAAA)]
    assert a_aaaa > 0.97
    # IXP shows HTTPS records (~9%) that IoT devices do not query.
    assert ixp_shares[int(RecordType.HTTPS)] > 0.05
    assert int(RecordType.HTTPS) not in iot_all
    # PTR is prominent only with mDNS (~20%).
    assert iot_all[int(RecordType.PTR)] > 0.15
