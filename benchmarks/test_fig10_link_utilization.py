"""Figure 10: link utilisation across the caching configurations."""

from dataclasses import replace

import pytest

from repro.doc import CachingScheme
from repro.experiments import ExperimentConfig, run_resolution_experiment

from conftest import print_rows

BASE = ExperimentConfig(
    transport="coap",
    num_queries=50,
    num_names=8,
    records_per_name=4,
    ttl=(2, 8),
    seed=10,
    loss=0.05,
)


def _grid():
    """All 8 scenarios × 2 schemes of Figure 10."""
    results = {}
    for use_proxy in (False, True):
        for client_coap in (False, True):
            for client_dns in (False, True):
                for scheme in (CachingScheme.DOH_LIKE, CachingScheme.EOL_TTLS):
                    config = replace(
                        BASE,
                        use_proxy=use_proxy,
                        client_coap_cache=client_coap,
                        client_dns_cache=client_dns,
                        scheme=scheme,
                    )
                    key = (use_proxy, client_coap, client_dns, scheme.value)
                    results[key] = run_resolution_experiment(config)
    return results


@pytest.fixture(scope="module")
def grid():
    return _grid()


def test_fig10_link_utilization(grid, benchmark):
    benchmark(
        run_resolution_experiment,
        replace(BASE, use_proxy=True, scheme=CachingScheme.EOL_TTLS),
    )

    rows = []
    for (use_proxy, ccache, dcache, scheme), result in grid.items():
        rows.append(
            (
                "proxy" if use_proxy else "opaque",
                "coap$" if ccache else "-",
                "dns$" if dcache else "-",
                scheme,
                result.link.frames_1hop,
                result.link.frames_2hop,
                result.link.bytes_1hop,
                result.link.bytes_2hop,
            )
        )
    print_rows(
        "Figure 10 — link utilisation (4-record AAAA, 50 queries)",
        ["forwarder", "client-coap", "client-dns", "scheme",
         "frames@1hop", "frames@2hop", "bytes@1hop", "bytes@2hop"],
        rows,
    )

    def bytes_1hop(use_proxy, ccache, dcache, scheme):
        return grid[(use_proxy, ccache, dcache, scheme)].link.bytes_1hop

    # CoAP caching reduces load (Section 6.2): a caching proxy moves
    # traffic off the bottleneck link compared to the opaque forwarder.
    for scheme in ("doh-like", "eol-ttls"):
        assert bytes_1hop(True, False, False, scheme) < bytes_1hop(
            False, False, False, scheme
        )

    # EOL TTLs beats DoH-like whenever caches revalidate.
    assert bytes_1hop(True, True, False, "eol-ttls") <= bytes_1hop(
        True, True, False, "doh-like"
    )
    assert bytes_1hop(True, False, False, "eol-ttls") <= bytes_1hop(
        True, False, False, "doh-like"
    )

    # A client CoAP cache also relieves the client links.
    eol_plain = grid[(False, False, False, "eol-ttls")].link.bytes_2hop
    eol_coap_cache = grid[(False, True, False, "eol-ttls")].link.bytes_2hop
    assert eol_coap_cache < eol_plain

    # The DNS client cache alone gives only little advantage.
    dns_only = grid[(False, False, True, "eol-ttls")].link.bytes_1hop
    nothing = grid[(False, False, False, "eol-ttls")].link.bytes_1hop
    assert dns_only <= nothing

    # All configurations stay fully successful.
    for result in grid.values():
        assert result.success_rate == 1.0
