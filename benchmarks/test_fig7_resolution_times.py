"""Figure 7: name resolution time CDFs for 50 Poisson queries."""

import pytest

from repro.experiments import ExperimentConfig, run_resolution_experiment
from repro.experiments.metrics import fraction_below, percentile

from conftest import print_rows

#: The lossy-testbed regime: per-frame loss with a single MAC retry so
#: the CoAP retransmission layer is exercised (the paper's links
#: saturate under the Poisson load).
LOSS = 0.25
L2_RETRIES = 1


#: The paper repeats every run 10 times (Section 5.1); three
#: repetitions keep the benchmark fast while smoothing the CDFs.
REPETITIONS = 3


def _run(transport, rtype_name, seed=1):
    from repro.dns import RecordType

    config = ExperimentConfig(
        transport=transport,
        rtype=RecordType.AAAA if rtype_name == "AAAA" else RecordType.A,
        num_queries=50,
        loss=LOSS,
        l2_retries=L2_RETRIES,
        seed=seed,
        run_duration=300.0,
    )
    return run_resolution_experiment(config)


class _Pooled:
    """Repetition-pooled view with the single-run interface."""

    def __init__(self, runs):
        self.runs = runs
        self.resolution_times = [
            t for run in runs for t in run.resolution_times
        ]
        self.outcomes = [o for run in runs for o in run.outcomes]

    @property
    def success_rate(self):
        return len(self.resolution_times) / len(self.outcomes)


@pytest.fixture(scope="module")
def results():
    out = {}
    for rtype in ("A", "AAAA"):
        for transport in ("udp", "dtls", "coap", "coaps", "oscore"):
            out[(transport, rtype)] = _Pooled(
                [
                    _run(transport, rtype, seed=1 + 1000 * rep)
                    for rep in range(REPETITIONS)
                ]
            )
    return out


def test_fig7_resolution_time_cdfs(results, benchmark):
    benchmark(_run, "coap", "AAAA", 2)

    rows = []
    for (transport, rtype), result in results.items():
        times = result.resolution_times
        rows.append(
            (
                transport,
                rtype,
                f"{result.success_rate:.2f}",
                f"{100 * fraction_below(times, 0.25):.0f}%",
                f"{percentile(times, 50) * 1000:.0f} ms",
                f"{100 * fraction_below(times, 20.0):.0f}%",
                f"{max(times):.1f} s",
            )
        )
    print_rows(
        "Figure 7 — resolution times (50 queries, lambda=5/s)",
        ["transport", "record", "success", "<250ms", "median", "<20s", "max"],
        rows,
    )

    # Shape claims of Section 5.4.
    for rtype in ("A", "AAAA"):
        for key in results:
            assert results[key].success_rate >= 0.9

    # UDP/A is the fastest configuration (nothing fragments).
    udp_a = results[("udp", "A")].resolution_times
    for transport in ("dtls", "coaps", "oscore"):
        other = results[(transport, "A")].resolution_times
        assert fraction_below(udp_a, 0.25) >= fraction_below(other, 0.25)

    # Fully-fragmenting transports (DTLS/CoAPS/OSCORE) group within a
    # modest band of each other, below the non-fragmenting UDP/A.
    fractions = [
        fraction_below(results[(t, "AAAA")].resolution_times, 0.25)
        for t in ("dtls", "coaps", "oscore")
    ]
    assert max(fractions) - min(fractions) < 0.35

    # The long tail is driven by the exponential back-off: the slowest
    # resolutions take tens of seconds, not minutes.
    for result in results.values():
        assert max(result.resolution_times) < 100.0
