"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints
the rows/series the paper reports (via ``print_rows``) and times a
representative computation with pytest-benchmark. Absolute numbers
differ from the testbed; EXPERIMENTS.md records the paper-vs-measured
comparison for each.
"""

from typing import Iterable, Sequence


def print_rows(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one table in the captured benchmark output."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), 12) for h in header]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
