"""Figure 11: CoAP (re-)transmission and cache events at the clients."""

from dataclasses import replace

import pytest

from repro.coap.codes import Code
from repro.coap.reliability import ReliabilityParams
from repro.doc import CachingScheme
from repro.experiments import ExperimentConfig, run_resolution_experiment

from conftest import print_rows

BASE = ExperimentConfig(
    transport="coap",
    num_queries=50,
    num_names=8,
    records_per_name=4,
    ttl=(2, 8),
    seed=11,
    loss=0.3,
    l2_retries=1,
    client_coap_cache=True,
)

#: The blue scenarios of Figure 10, by method (Figure 11's grid).
SCENARIOS = {
    "opaque": dict(use_proxy=False, scheme=CachingScheme.EOL_TTLS),
    "doh-like+proxy": dict(use_proxy=True, scheme=CachingScheme.DOH_LIKE),
    "eol-ttls+proxy": dict(use_proxy=True, scheme=CachingScheme.EOL_TTLS),
}


def _run(scenario: str, method: Code):
    config = replace(BASE, method=method, **SCENARIOS[scenario])
    if method == Code.POST:
        # POST responses are not cacheable; client CoAP caches are moot.
        config = replace(config, client_coap_cache=False)
    return run_resolution_experiment(config)


@pytest.fixture(scope="module")
def runs():
    return {
        (scenario, method.name): _run(scenario, method)
        for scenario in SCENARIOS
        for method in (Code.FETCH, Code.GET, Code.POST)
    }


def test_fig11_client_events(runs, benchmark):
    benchmark(_run, "eol-ttls+proxy", Code.FETCH)

    params = ReliabilityParams()
    rows = []
    for (scenario, method), result in runs.items():
        events = result.client_events
        counts = {}
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        rows.append(
            (
                scenario,
                method,
                counts.get("transmission", 0),
                counts.get("retransmission", 0),
                counts.get("cache_hit", 0),
                counts.get("validation", 0) + result.proxy_revalidations,
                f"{result.success_rate:.2f}",
            )
        )
    print_rows(
        "Figure 11 — client CoAP events",
        ["scenario", "method", "transmissions", "retransmissions",
         "cache hits", "validations", "success"],
        rows,
    )

    def retransmissions(scenario, method):
        return sum(
            1 for e in runs[(scenario, method)].client_events
            if e.kind == "retransmission"
        )

    # "In the opaque forwarder scenario, we observe about 50% more
    # retransmissions ... compared to any of the caching approaches."
    for method in ("FETCH", "GET"):
        opaque = retransmissions("opaque", method)
        cached = retransmissions("eol-ttls+proxy", method)
        assert opaque > cached

    # Caching schemes produce client cache hits with FETCH/GET, POST
    # cannot use response caches (degrades to opaque level).
    fetch_hits = sum(
        1 for e in runs[("eol-ttls+proxy", "FETCH")].client_events
        if e.kind == "cache_hit"
    )
    post_hits = sum(
        1 for e in runs[("eol-ttls+proxy", "POST")].client_events
        if e.kind == "cache_hit"
    )
    assert fetch_hits > 0
    assert post_hits == 0

    # Retransmission offsets scatter inside the §4.2 windows (the gray
    # regions of Figure 11).
    for result in runs.values():
        starts = {}
        for event in result.client_events:
            if event.kind == "transmission":
                starts[(event.token, event.mid)] = event.time
        for event in result.client_events:
            if event.kind != "retransmission":
                continue
            start = starts.get((event.token, event.mid))
            if start is None:
                continue
            offset = event.time - start
            low1, _ = params.retransmission_window(1)
            _, high4 = params.retransmission_window(4)
            assert low1 * 0.9 <= offset <= high4 * 1.1
