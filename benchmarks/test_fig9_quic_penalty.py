"""Figure 9: relative link-layer cost of DNS over QUIC."""

from repro.quicmodel import (
    HEADER_RANGE_0RTT,
    HEADER_RANGE_1RTT,
    penalty_series,
    quic_penalty,
)
from repro.quicmodel.model import aaaa_fragments_worst_case

from conftest import print_rows


def _full_grid():
    grid = {}
    for mode in ("0rtt", "1rtt"):
        for baseline in ("DTLSv1.2", "CoAPSv1.2", "OSCORE"):
            for message in ("query", "response_a", "response_aaaa"):
                grid[(mode, baseline, message)] = penalty_series(
                    mode, baseline, message, step=8
                )
    return grid


def test_fig9_quic_penalty(benchmark):
    grid = benchmark(_full_grid)

    rows = []
    for (mode, baseline, message), series in grid.items():
        rows.append(
            (
                mode,
                baseline,
                message,
                f"{series[0][1]:.0f}%",
                f"{series[-1][1]:.0f}%",
            )
        )
    print_rows(
        "Figure 9 — DoQ link-layer data relative to other transports",
        ["handshake", "baseline", "message", "best header", "worst header"],
        rows,
    )

    # Best-case 1-RTT is comparable (around 100%)...
    best = quic_penalty(HEADER_RANGE_1RTT[0], "CoAPSv1.2", "query")
    assert 80 <= best <= 115
    # ...but in the majority of configurations DoQ needs more data.
    above_parity = sum(
        1
        for series in grid.values()
        for _, penalty in series
        if penalty > 100
    )
    total = sum(len(series) for series in grid.values())
    assert above_parity / total > 0.5
    # 0-RTT penalties dominate their 1-RTT counterparts.
    for baseline in ("DTLSv1.2", "CoAPSv1.2", "OSCORE"):
        for message in ("query", "response_a", "response_aaaa"):
            zero = grid[("0rtt", baseline, message)][-1][1]
            one = grid[("1rtt", baseline, message)][-1][1]
            assert zero >= one
    # Max-header 0-RTT AAAA response needs 3 fragments (Section 5.5).
    assert aaaa_fragments_worst_case() == 3
