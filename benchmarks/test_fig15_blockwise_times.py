"""Figure 15: resolution times with block-wise transfer (Appendix D)."""

from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, run_resolution_experiment
from repro.experiments.metrics import percentile

from conftest import print_rows

BASE = ExperimentConfig(
    transport="coap",
    num_queries=50,
    num_names=50,
    seed=12,
    loss=0.2,
    l2_retries=1,
    run_duration=400.0,
)


def _run(block_size):
    return run_resolution_experiment(replace(BASE, block_size=block_size))


@pytest.fixture(scope="module")
def runs():
    return {
        label: _run(size)
        for label, size in (
            ("no blockwise", None),
            ("16 bytes", 16),
            ("32 bytes", 32),
            ("64 bytes", 64),
        )
    }


def test_fig15_blockwise_resolution_times(runs, benchmark):
    benchmark(_run, 32)

    rows = []
    for label, result in runs.items():
        times = result.resolution_times
        rows.append(
            (
                label,
                f"{result.success_rate:.2f}",
                f"{percentile(times, 50) * 1000:.0f} ms" if times else "-",
                f"{percentile(times, 90):.2f} s" if times else "-",
                f"{max(times):.1f} s" if times else "-",
            )
        )
    print_rows(
        "Figure 15 — resolution times with block-wise transfer",
        ["block size", "success", "median", "p90", "max"],
        rows,
    )

    # "performance decreases with smaller block sizes": the 16-byte
    # configuration needs more messages and resolves slower than
    # larger blocks / no block-wise.
    median = {
        label: percentile(result.resolution_times, 50)
        for label, result in runs.items()
    }
    assert median["16 bytes"] >= median["no blockwise"]
    assert median["16 bytes"] >= median["32 bytes"]

    # More frames cross the medium with smaller blocks (the congestion
    # source in the paper's testbed).
    frames = {
        label: result.link.frames_2hop + result.link.frames_1hop
        for label, result in runs.items()
    }
    assert frames["16 bytes"] > frames["32 bytes"] > frames["no blockwise"]

    # Appendix D: "With a block size of 16 bytes, only ≈90% [of CoAP]
    # name resolutions complete" — small blocks lose resolutions to
    # congestion; larger blocks and no-blockwise stay near-complete.
    assert runs["16 bytes"].success_rate >= 0.6
    assert runs["16 bytes"].success_rate <= runs["no blockwise"].success_rate
    for label in ("no blockwise", "32 bytes", "64 bytes"):
        assert runs[label].success_rate >= 0.9
