"""Section 7: the compressed CBOR DNS message format."""

from repro.doc.cbor_format import (
    compression_ratio,
    decode_query,
    decode_response,
    encode_query,
    encode_response,
)
from repro.dns import Question, RecordType
from repro.experiments.packet_sizes import MEDIAN_NAME, canonical_messages

from conftest import print_rows


def _measure():
    messages = canonical_messages()
    question = Question(MEDIAN_NAME, RecordType.AAAA)
    out = {}
    query_wire = messages["query"].encode()
    out["query"] = (len(query_wire), len(encode_query(question)))
    for kind in ("response_a", "response_aaaa"):
        wire = messages[kind].encode()
        out[kind] = (len(wire), len(encode_response(messages[kind])))
    return out


def test_sec7_cbor_compression(benchmark):
    sizes = benchmark(_measure)

    rows = [
        (
            kind,
            f"{wire} B",
            f"{cbor} B",
            f"-{100 * (1 - cbor / wire):.0f}%",
        )
        for kind, (wire, cbor) in sizes.items()
    ]
    print_rows(
        "Section 7 — wire format vs CBOR",
        ["message", "wire", "CBOR", "reduction"],
        rows,
    )

    # "we could verify that the wire-format of an AAAA response packet
    # compresses from 70 bytes down to 24 bytes — a reduction by 66%".
    wire, cbor = sizes["response_aaaa"]
    assert wire == 70
    assert cbor <= 26
    assert 1 - cbor / wire >= 0.6

    # The abstract's "reduces data by up to 70%": the best case over
    # all message kinds reaches ≥65%.
    best = max(1 - cbor / wire for wire, cbor in sizes.values())
    assert best >= 0.65

    # Round-trip correctness of the compressed form.
    messages = canonical_messages()
    question = Question(MEDIAN_NAME, RecordType.AAAA)
    assert decode_query(encode_query(question)) == question
    decoded = decode_response(
        encode_response(messages["response_aaaa"]), question
    )
    assert decoded.answers[0].rdata.address == "2001:db8::1"
