"""Figure 8: code sizes of UDP-based DNS transports including QUIC."""

from repro.memmodel import fig8_builds
from repro.memmodel.modules import QUANT_OPTIMISATION_SAVINGS

from conftest import print_rows


def test_fig8_code_sizes(benchmark):
    builds = benchmark(fig8_builds)

    rows = []
    for name, build in builds.items():
        crypto = build.rom_by_category.get(
            "Crypto (DTLS / TLS / OSCORE)", 0
        ) + build.rom_by_category.get("DTLS", 0) + build.rom_by_category.get(
            "OSCORE", 0
        )
        rows.append(
            (
                name,
                f"{build.rom_kbytes:.1f} kB",
                f"{crypto / 1000:.1f} kB",
                f"{build.rom_by_category.get('Application', 0) / 1000:.1f} kB",
            )
        )
    print_rows(
        "Figure 8 — code sizes (UDP & sock omitted)",
        ["transport", "ROM total", "crypto part", "application"],
        rows,
    )

    quic = builds["QUIC"].rom
    # "QUIC, including TLS, uses nearly double the ROM as any of the
    # common IoT transports."
    assert quic > max(
        build.rom for name, build in builds.items() if name != "QUIC"
    )
    assert quic > 2.0 * builds["DTLSv1.2"].rom
    assert quic > 2.0 * builds["OSCORE"].rom
    # "Further optimizations ... can only save ≈20 kBytes, which would
    # require DNS over QUIC to use more ROM compared to DNS over CoAP."
    assert quic - QUANT_OPTIMISATION_SAVINGS > builds["CoAP"].rom
