"""Figure 5: ROM/RAM consumption per DNS transport."""

from repro.memmodel import fig5_builds

from conftest import print_rows


def test_fig5_memory_consumption(benchmark):
    builds = benchmark(fig5_builds, True)

    rows = []
    for name, build in builds.items():
        rows.append(
            (
                name,
                f"{build.rom_kbytes:.1f} kB",
                f"{build.ram_kbytes:.1f} kB",
                ", ".join(
                    f"{category}={size/1000:.1f}k"
                    for category, size in sorted(build.rom_by_category.items())
                ),
            )
        )
    print_rows("Figure 5 — memory consumption", ["build", "ROM", "RAM", "ROM by category"], rows)

    # Shape checks against Section 5.2's statements.
    assert builds["UDP"].rom < builds["CoAP"].rom < builds["OSCORE"].rom
    assert builds["OSCORE"].rom < builds["CoAPSv1.2"].rom
    # DTLS ≈ +24 kB ROM, OSCORE ≈ +11 kB ROM over plain CoAP (compared
    # without the GET overhead, which only the CoAP builds carry).
    plain_builds = fig5_builds(with_get=False)
    assert 20_000 < plain_builds["CoAPSv1.2"].rom - plain_builds["CoAP"].rom < 30_000
    assert 9_000 < plain_builds["OSCORE"].rom - plain_builds["CoAP"].rom < 13_000
    # "With OSCORE, we can save more than 10 kBytes of code memory
    # compared to DTLS, when a CoAP application is already present."
    assert builds["CoAPSv1.2"].rom - builds["OSCORE"].rom > 10_000
    # DTLS also costs ~1.5 kB RAM.
    assert builds["CoAPSv1.2"].ram - builds["OSCORE"].ram > 1_000
    # All builds fit class-2 ROM budgets (≈250 kB, Table 2a).
    assert all(build.rom < 250_000 for build in builds.values())
    # GET overhead visible in the CoAP builds (+2 kB / +173 B).
    plain = fig5_builds(with_get=False)
    assert builds["CoAP"].rom - plain["CoAP"].rom == 2_000
    assert builds["CoAP"].ram - plain["CoAP"].ram == 173
