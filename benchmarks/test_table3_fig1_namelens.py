"""Table 3 + Figure 1: name-length statistics, IoT vs IXP."""

import random

from repro.datasets import DATASET_PROFILES, generate_names, name_length_stats
from repro.datasets.stats import length_histogram

from conftest import print_rows

#: Table 3 reference values: (median, mean) per data source.
PAPER_TABLE3 = {
    "yourthings": (24, 24.5),
    "iotfinder": (24, 26.8),
    "moniotr": (23, 27.1),
    "ixp": (25, 26.1),
}


def _generate_all(seed=1):
    rng = random.Random(seed)
    return {
        key: generate_names(profile, rng)
        for key, profile in DATASET_PROFILES.items()
    }


def test_table3_name_length_statistics(benchmark):
    datasets = benchmark(_generate_all)
    rows = []
    for key, names in datasets.items():
        stats = name_length_stats(names)
        rows.append(
            (
                DATASET_PROFILES[key].name,
                int(stats["count"]),
                int(stats["min"]),
                int(stats["max"]),
                round(stats["mean"], 1),
                round(stats["std"], 1),
                int(stats["q1"]),
                int(stats["q2"]),
                int(stats["q3"]),
            )
        )
    print_rows(
        "Table 3 — name lengths [chars]",
        ["source", "names", "min", "max", "mean", "std", "Q1", "Q2", "Q3"],
        rows,
    )
    for key, (paper_median, paper_mean) in PAPER_TABLE3.items():
        stats = name_length_stats(datasets[key])
        assert abs(stats["q2"] - paper_median) <= 3, key
        assert abs(stats["mean"] - paper_mean) <= 4, key


def test_fig1_length_distribution_shape():
    datasets = _generate_all(seed=2)
    iot = [n for key in ("yourthings", "iotfinder", "moniotr") for n in datasets[key]]
    histogram = length_histogram(iot)
    # Figure 1a: a dominant hump in 15-35 and a visible mDNS tail >45.
    peak = histogram.index(max(histogram))
    assert 15 <= peak <= 35
    tail_mass = sum(histogram[45:])
    assert 0.01 <= tail_mass <= 0.15
    # IXP (Figure 1b): much smaller tail beyond 45 chars, max 68.
    ixp_histogram = length_histogram(datasets["ixp"])
    assert sum(ixp_histogram[69:]) == 0
    assert sum(ixp_histogram[45:]) < tail_mass
