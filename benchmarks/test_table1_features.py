"""Table 1: DNS transport feature comparison."""

from repro.doc.features import TABLE1

from conftest import print_rows


def test_table1_feature_matrix(benchmark):
    def build():
        return [
            (
                t.name,
                "Y" if t.message_segmentation else "-",
                "Y" if t.message_authentication else "-",
                "Y" if t.message_encryption else "-",
                "Y" if t.format_multiplexing else "-",
                "Y" if t.shares_protocol_with_application else "-",
                "Y" if t.constrained_iot_suitable else "-",
                "Y" if t.secure_enroute_caching else "-",
            )
            for t in TABLE1
        ]

    rows = benchmark(build)
    print_rows(
        "Table 1 — DNS transport features",
        ["transport", "segment", "auth", "encrypt", "multiplex",
         "shares-app", "IoT-suitable", "enroute-cache"],
        rows,
    )
    # The paper's headline claims.
    by_name = {row[0]: row for row in rows}
    assert by_name["OSCORE"][-1] == "Y"
    assert all(row[-1] == "-" for name, row in by_name.items() if name != "OSCORE")
    assert by_name["UDP"][3] == "-"          # no encryption
    assert by_name["CoAP"][1] == "Y"         # segmentation via block-wise
