"""Table 5: comparison of the DoC request methods."""

from repro.coap import CoapMessage, Code, cache_key_for
from repro.doc.features import TABLE5

from conftest import print_rows


def test_table5_method_comparison(benchmark):
    def build():
        return [
            (
                name,
                "Y" if features.cacheable else "-",
                "Y" if features.body_carried else "-",
                "Y" if features.blockwise_query else "-",
            )
            for name, features in TABLE5.items()
        ]

    rows = benchmark(build)
    print_rows(
        "Table 5 — DoC request methods",
        ["method", "cacheable", "body-carried", "blockwise-query"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["GET"] == ("GET", "Y", "-", "-")
    assert by_name["POST"] == ("POST", "-", "Y", "Y")
    assert by_name["FETCH"] == ("FETCH", "Y", "Y", "Y")

    # Cross-check against the implementation, not just the registry.
    assert cache_key_for(CoapMessage.request(Code.FETCH, "/dns", payload=b"q"))
    assert cache_key_for(CoapMessage.request(Code.GET, "/dns"))
    assert cache_key_for(CoapMessage.request(Code.POST, "/dns", payload=b"q")) is None
